"""The worker-process side of the network decode service.

Each worker process runs :func:`worker_main`: it attaches the server's
shared-memory segments (graph pack + syndrome slab), hosts one ordinary
in-process :class:`~repro.service.DecodeService` built from the server's
:class:`~repro.service.ServiceConfig`, and speaks a small tuple protocol
over its :class:`multiprocessing.Pipe` with the front end:

=================================================  ===================================
server → worker                                    worker → server
=================================================  ===================================
``("request", seq, wire, slot, count)``            ``("response", seq, payload)``
``("request-batch", [(seq, wire, slot, count)])``  ``("response-batch", [(seq, payload)])``
``("stream-open", seq, sid, session, w, c)``       ``("stream-reply", seq, result)``
``("stream-op", seq, sid, op, payload)``           ``("stream-reply", seq, result)``
``("stream-close", sid)``                          *(no reply)*
``("ping", seq)``                                  ``("pong", seq)``
``("drain",)``                                     ``("drained",)``
=================================================  ===================================

A ``request-batch`` message is the batched hop end to end: the whole batch
is submitted to the in-process service *before* any member is awaited — the
micro-batcher sees the full batch instead of trickled singles — and the one
``response-batch`` reply is sent only when every member resolved.

``payload`` is :meth:`repro.service.DecodeResponse.to_dict` *minus* the
request echo (the front end holds the request wire form and re-attaches it
when it builds the client's ``response`` frame — same codec, fewer bytes on
the pipe).  When ``slot`` is not ``None`` the request's defect indices live
in the syndrome slab at ``(slot, count)`` and the wire form's defect list is
empty — the zero-copy handoff path.

Decode results are bit-identical to in-process serving by construction: the
worker *is* an in-process service; the network layer around it only moves
bytes.
"""

from __future__ import annotations

import signal
import threading

from ..config import ServiceConfig
from ..cache import build_session
from ..request import STATUS_ERROR, DecodeRequest, SessionKey
from ..service import DecodeService
from ...api.session import DecoderSession
from ...graphs.syndrome import Syndrome
from .shm import SharedGraphPack, SyndromeSlab


def response_payload(response) -> dict:
    """``DecodeResponse.to_dict()`` without the request echo."""
    return {
        "status": response.status,
        "outcome": None if response.outcome is None else response.outcome.to_dict(),
        "queue_delay_seconds": response.queue_delay_seconds,
        "latency_seconds": response.latency_seconds,
        "batch_size": response.batch_size,
        "cached": response.cached,
        "error": response.error,
    }


def error_payload(exc: BaseException) -> dict:
    """A STATUS_ERROR payload for a request that failed outside a decoder."""
    return {
        "status": STATUS_ERROR,
        "outcome": None,
        "queue_delay_seconds": 0.0,
        "latency_seconds": 0.0,
        "batch_size": 0,
        "cached": False,
        "error": f"{type(exc).__name__}: {exc}",
    }


def _shared_graph_factory(pack: SharedGraphPack | None):
    """A session factory that prefers graphs mapped from shared memory.

    Keys whose code was packed by the server reuse the shared arrays; any
    other key falls back to building its graph locally — correctness never
    depends on what the server chose to pre-pack.
    """
    if pack is None:
        return build_session
    packed = set(pack.keys())

    def factory(key: SessionKey) -> DecoderSession:
        code_key = key.code.key()
        if code_key in packed:
            return DecoderSession(pack.graph(code_key), key.decoder, key.config)
        return build_session(key)

    return factory


def _request_from_wire(wire: dict, slab: SyndromeSlab | None, slot, count) -> DecodeRequest:
    request = DecodeRequest.from_dict(wire)
    if slot is None:
        return request
    if slab is None:
        raise ValueError("slab slot referenced but no slab attached")
    defects = slab.read(slot, count)
    syndrome = request.syndrome
    return DecodeRequest(
        session=request.session,
        syndrome=Syndrome(
            defects=defects,
            error_edges=syndrome.error_edges,
            logical_flip=syndrome.logical_flip,
            erasures=syndrome.erasures,
        ),
        request_id=request.request_id,
    )


class _BatchAccumulator:
    """Collects one pipe batch's member payloads; sends one reply when full.

    Futures resolve on the service's worker threads in any order; the
    accumulator keeps the members in submission order and fires exactly one
    ``("response-batch", ...)`` message once the last one lands.
    """

    __slots__ = ("_seqs", "_payloads", "_remaining", "_lock", "_send")

    def __init__(self, seqs: list[int], send) -> None:
        self._seqs = seqs
        self._payloads: list = [None] * len(seqs)
        self._remaining = len(seqs)
        self._lock = threading.Lock()
        self._send = send

    def resolve(self, index: int, payload: dict) -> None:
        with self._lock:
            self._payloads[index] = payload
            self._remaining -= 1
            done = self._remaining == 0
        if done:
            self._send(
                ("response-batch", list(zip(self._seqs, self._payloads)))
            )

    def callback(self, index: int):
        def on_done(future) -> None:
            try:
                payload = response_payload(future.result())
            except BaseException as exc:
                payload = error_payload(exc)
            self.resolve(index, payload)

        return on_done


def _stream_result_wire(result):
    """Serialise a stream-op result (None, a Counter, or a DecodeOutcome)."""
    if result is None:
        return None
    if hasattr(result, "to_dict"):
        return {"outcome": result.to_dict()}
    return {"counters": {str(key): int(value) for key, value in dict(result).items()}}


def worker_main(
    worker_id: int,
    conn,
    pack_name: str | None,
    slab_name: str | None,
    slab_slots: int,
    slab_capacity: int,
    config_wire: dict,
    drain_timeout_seconds: float | None = 60.0,
) -> None:
    """Entry point of one worker process (target of ``multiprocessing.Process``).

    Runs until the pipe closes (front end died — exit quietly; the front end
    owns client-facing error handling) or a ``("drain",)`` command arrives
    (drain the in-flight work through ``DecodeService.close`` and ack with
    ``("drained",)``).
    """
    # The front end owns shutdown: a stray SIGTERM/SIGINT to the process
    # group must not kill workers mid-batch — drain arrives over the pipe.
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    pack = SharedGraphPack.attach(pack_name) if pack_name else None
    slab = SyndromeSlab.attach(slab_name, slab_slots, slab_capacity) if slab_name else None
    config = ServiceConfig.from_dict(config_wire)
    service = DecodeService(config, session_factory=_shared_graph_factory(pack))
    service.start()

    send_lock = threading.Lock()

    def send(message: tuple) -> None:
        # Futures resolve on worker threads; one pipe, one writer at a time.
        with send_lock:
            try:
                conn.send(message)
            except (BrokenPipeError, OSError):  # front end is gone
                pass

    def on_response(seq: int):
        def callback(future) -> None:
            try:
                payload = response_payload(future.result())
            except BaseException as exc:
                payload = error_payload(exc)
            send(("response", seq, payload))

        return callback

    def on_stream_reply(seq: int):
        def callback(future) -> None:
            try:
                send(("stream-reply", seq, _stream_result_wire(future.result())))
            except BaseException as exc:
                send(("stream-reply", seq, {"error": f"{type(exc).__name__}: {exc}"}))

        return callback

    streams: dict = {}
    draining = False
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        command = message[0]
        if command == "request":
            _, seq, wire, slot, count = message
            try:
                request = _request_from_wire(wire, slab, slot, count)
                future = service.submit(request)
            except BaseException as exc:
                send(("response", seq, error_payload(exc)))
                continue
            future.add_done_callback(on_response(seq))
        elif command == "request-batch":
            _, entries = message
            batch = _BatchAccumulator([entry[0] for entry in entries], send)
            # Submit the whole batch before awaiting anything: the service's
            # micro-batcher coalesces what is in its queue, so the batch
            # arrives as one wave, not a trickle of singles.
            for index, (seq, wire, slot, count) in enumerate(entries):
                try:
                    request = _request_from_wire(wire, slab, slot, count)
                    future = service.submit(request)
                except BaseException as exc:
                    batch.resolve(index, error_payload(exc))
                    continue
                future.add_done_callback(batch.callback(index))
        elif command == "stream-open":
            _, seq, sid, session_wire, window, commit_depth = message
            try:
                key = SessionKey.from_dict(session_wire)
                streams[sid] = service.open_stream(
                    key, window=window, commit_depth=commit_depth
                )
                send(("stream-reply", seq, None))
            except BaseException as exc:
                send(("stream-reply", seq, {"error": f"{type(exc).__name__}: {exc}"}))
        elif command == "stream-op":
            _, seq, sid, op, payload = message
            stream = streams.get(sid)
            if stream is None:
                send(("stream-reply", seq, {"error": f"LookupError: unknown stream {sid}"}))
                continue
            try:
                if op == "begin":
                    future = stream.begin(payload)
                elif op == "push":
                    future = stream.push_round(payload)
                elif op == "finalize":
                    future = stream.finalize()
                    del streams[sid]
                else:
                    raise ValueError(f"unknown stream op {op!r}")
            except BaseException as exc:
                send(("stream-reply", seq, {"error": f"{type(exc).__name__}: {exc}"}))
                continue
            future.add_done_callback(on_stream_reply(seq))
        elif command == "stream-close":
            # The front end lost the stream's client: drop the abandoned
            # ServiceStream so a long-running worker does not accumulate one
            # per disconnected client.  No reply — nobody is waiting.
            streams.pop(message[1], None)
        elif command == "ping":
            send(("pong", message[1]))
        elif command == "drain":
            draining = True
            break
    # Drain everything already admitted; every pending future resolves (and
    # its callback sends the response) before close() returns.
    try:
        service.close(timeout=drain_timeout_seconds)
    except Exception:
        pass
    if draining:
        send(("drained",))
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass
    if slab is not None:
        slab.close()
    if pack is not None:
        pack.close()
