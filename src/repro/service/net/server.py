"""The asyncio front end of the network decode service.

:class:`NetServer` is the process that owns the listening socket, the worker
pool, and the shared-memory data plane:

* **Accept path.**  An asyncio TCP server speaks the length-prefixed
  canonical-JSON protocol of :mod:`repro.service.net.protocol`.  All
  connection state lives on the event loop; there is exactly one loop
  thread, so per-connection bookkeeping needs no locks.
* **Worker pool.**  ``processes`` worker processes are forked at
  :meth:`start` (before the loop thread exists — fork-safety), each hosting
  an in-process :class:`~repro.service.DecodeService` built from the same
  :class:`~repro.service.ServiceConfig`.  Requests travel over per-worker
  pipes; one reader thread per worker posts replies back into the loop with
  ``call_soon_threadsafe``.
* **Routing.**  A consistent-hash :class:`~repro.service.net.router.HashRing`
  maps each request's :meth:`~repro.service.SessionKey.key_hash` to a
  worker, so a session's decoder stays cached in one process.
* **Data plane.**  Immutable decoding graphs are packed once into a
  :class:`~repro.service.net.shm.SharedGraphPack`; per-request defect lists
  ride the :class:`~repro.service.net.shm.SyndromeSlab` instead of the pipe.
* **Drain.**  :meth:`stop` (or SIGTERM under :meth:`run_forever`) closes the
  listener, tells clients via ``drain`` frames, waits for in-flight work,
  drains every worker's service, and joins the processes.  A worker that
  dies instead answers its in-flight requests with isolated
  ``STATUS_ERROR`` responses, leaves the ring, and its keys re-route — the
  contract is "errors, never a hang".
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import socket
import threading
import time

from ..config import ServiceConfig
from ..request import STATUS_ERROR, SessionKey
from .protocol import (
    CODEC_BINARY,
    PROTOCOL_VERSION,
    ProtocolError,
    check_version,
    negotiate_codec,
    read_frame,
    write_frame,
)
from .router import HashRing
from .shm import SharedGraphPack, SyndromeSlab
from .worker import worker_main

#: Default bound on drain (stop/SIGTERM): in-flight wait + per-worker acks.
DEFAULT_DRAIN_TIMEOUT_SECONDS = 60.0


class _Worker:
    """Parent-side handle of one worker process."""

    __slots__ = ("worker_id", "process", "conn", "alive", "drained")

    def __init__(self, worker_id, process, conn):
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.alive = True
        self.drained = threading.Event()


class _Pending:
    """One request/stream-op in flight between front end and a worker."""

    __slots__ = ("kind", "client", "frame_id", "request_wire", "slot", "worker_id")

    def __init__(self, kind, client, frame_id, request_wire, slot, worker_id):
        self.kind = kind  # "request" | "stream"
        self.client = client
        self.frame_id = frame_id
        self.request_wire = request_wire
        self.slot = slot
        self.worker_id = worker_id


class _Client:
    """Per-connection state (owned by the loop thread)."""

    __slots__ = ("writer", "open", "codec")

    def __init__(self, writer):
        self.writer = writer
        self.open = True
        self.codec = 1  # negotiated at the handshake; JSON until then


class NetServer:
    """Horizontally scaled decode service over TCP.

    ``prewarm`` is an iterable of :class:`~repro.service.CodeSpec` whose
    graphs are packed into shared memory before the workers fork; any other
    code spec still decodes (the worker builds its graph locally).

    Usage (embedded)::

        server = NetServer(ServiceConfig(workers=2), processes=2,
                           prewarm=[CodeSpec(3, physical_error_rate=0.02)])
        host, port = server.start()
        ... NetClient(host, port) ...
        server.stop()

    or standalone with signal-driven drain: :meth:`run_forever`.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        processes: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        prewarm=(),
        slab_slots: int = 256,
        slab_slot_capacity: int = 512,
        drain_timeout_seconds: float = DEFAULT_DRAIN_TIMEOUT_SECONDS,
    ) -> None:
        if processes < 1:
            raise ValueError("processes must be >= 1")
        self.config = config if config is not None else ServiceConfig()
        if not isinstance(self.config, ServiceConfig):
            raise TypeError(f"config must be a ServiceConfig, got {type(config).__name__}")
        self.processes = processes
        self.host = host
        self.port = port
        self.prewarm = tuple(prewarm)
        self.drain_timeout_seconds = drain_timeout_seconds
        self._slab_slots = slab_slots
        self._slab_slot_capacity = slab_slot_capacity
        self._pack: SharedGraphPack | None = None
        self._slab: SyndromeSlab | None = None
        self._workers: dict[int, _Worker] = {}
        self._ring: HashRing | None = None
        self._pending: dict[int, _Pending] = {}
        self._streams: dict[tuple[int, int], int] = {}  # (client id, sid) -> worker
        self._clients: dict[int, _Client] = {}
        self._reader_threads: list[threading.Thread] = []
        self._seq = 0
        self._client_ids = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._server: asyncio.AbstractServer | None = None
        self._ready = threading.Event()
        self._started = False
        self._stopped = False
        self._draining = False
        self._refusing = False  # second drain stage: workers are going away
        self._idle = asyncio.Event()  # set while no work is pending

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Pack graphs, fork workers, start the loop thread; returns (host, port)."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        graphs = {}
        for spec in self.prewarm:
            graphs.setdefault(spec.key(), spec.build_graph())
        if graphs:
            self._pack = SharedGraphPack.create(graphs)
        self._slab = SyndromeSlab.create(self._slab_slots, self._slab_slot_capacity)
        # Fork BEFORE any thread exists: fork() of a multithreaded process
        # can deadlock the child.  "fork" shares the shared-memory mappings
        # and module state cheaply; the workers re-attach by name anyway, so
        # a "spawn"-only platform would also work (slower start).
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )
        for worker_id in range(self.processes):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=worker_main,
                name=f"repro-net-worker-{worker_id}",
                args=(
                    worker_id,
                    child_conn,
                    self._pack.name if self._pack is not None else None,
                    self._slab.name,
                    self._slab_slots,
                    self._slab_slot_capacity,
                    self.config.to_dict(),
                    self.drain_timeout_seconds,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers[worker_id] = _Worker(worker_id, process, parent_conn)
        self._ring = HashRing(self._workers)
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="repro-net-loop", daemon=True
        )
        self._loop_thread.start()
        self._ready.wait()
        for worker in self._workers.values():
            thread = threading.Thread(
                target=self._read_worker,
                args=(worker,),
                name=f"repro-net-reader-{worker.worker_id}",
                daemon=True,
            )
            thread.start()
            self._reader_threads.append(thread)
        return (self.host, self.port)

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._idle = asyncio.Event()
        self._idle.set()

        async def boot():
            self._server = await asyncio.start_server(
                self._handle_client, self.host, self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
            self._ready.set()

        self._loop.run_until_complete(boot())
        self._loop.run_forever()
        # Cancel whatever outlived run_forever, then close the loop cleanly.
        tasks = asyncio.all_tasks(self._loop)
        for task in tasks:
            task.cancel()
        if tasks:
            self._loop.run_until_complete(
                asyncio.gather(*tasks, return_exceptions=True)
            )
        self._loop.close()

    def stop(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, drain workers."""
        if not self._started or self._stopped:
            return
        self._stopped = True
        deadline = time.monotonic() + self.drain_timeout_seconds
        done = threading.Event()
        asyncio.run_coroutine_threadsafe(
            self._drain_async(done), self._loop
        )
        done.wait(self.drain_timeout_seconds)
        # From here on the workers are going away: late frames (a client
        # submitting past the drain notice and the in-flight wait) must be
        # refused rather than forwarded into drained workers.  The flag flip
        # AND the drain commands both run on the loop thread: a
        # multiprocessing Connection is not thread-safe, and the loop thread
        # may still be forwarding request frames on these same pipes —
        # routing the drain through the loop serialises the sends and also
        # guarantees no request frame follows the drain command onto a pipe.
        drain_sent = threading.Event()

        def refuse_and_drain_workers() -> None:
            self._refusing = True
            try:
                # Ask every live worker to drain; they answer ("drained",).
                for worker in list(self._workers.values()):
                    if not worker.alive:
                        continue
                    try:
                        worker.conn.send(("drain",))
                    except (BrokenPipeError, OSError):
                        self._on_worker_death(worker)
            finally:
                drain_sent.set()

        self._loop.call_soon_threadsafe(refuse_and_drain_workers)
        drain_sent.wait(max(0.0, deadline - time.monotonic()))
        for worker in self._workers.values():
            if worker.alive:
                worker.drained.wait(max(0.0, deadline - time.monotonic()))
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(5.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._loop_thread.join(5.0)
        for thread in self._reader_threads:
            thread.join(1.0)
        if self._slab is not None:
            self._slab.close()
        if self._pack is not None:
            self._pack.close()

    async def _drain_async(self, done: threading.Event) -> None:
        """Loop-side half of stop(): notify clients, wait for in-flight.

        Frames a client sent before it saw the ``drain`` notice are already
        admitted — they keep being served; a well-behaved client
        (:class:`~repro.service.net.client.NetClient`) refuses *new* work
        locally once notified, and ``drain_timeout_seconds`` bounds the rest.
        """
        try:
            self._draining = True
            self._server.close()
            await self._server.wait_closed()
            # Snapshot: _handle_client's finally block deletes entries from
            # _clients whenever a connection drops, and the awaits below
            # yield to exactly those tasks — iterating the live dict would
            # die with "dictionary changed size during iteration".
            for client in list(self._clients.values()):
                if client.open:
                    try:
                        write_frame(
                            client.writer, {"kind": "drain", "reason": "server stopping"}
                        )
                        await client.writer.drain()
                    except (ConnectionError, OSError):
                        client.open = False
            deadline = self._loop.time() + self.drain_timeout_seconds
            while self._loop.time() < deadline:
                if self._pending:
                    self._idle.clear()
                    try:
                        await asyncio.wait_for(
                            self._idle.wait(), deadline - self._loop.time()
                        )
                    except asyncio.TimeoutError:  # pragma: no cover - wedged worker
                        break
                # One settle tick: frames already inside connection buffers get
                # parsed and registered before we conclude the drain is complete.
                await asyncio.sleep(0.05)
                if not self._pending:
                    break
        finally:
            # stop() blocks on this event; an exception anywhere above must
            # not turn into a full drain_timeout_seconds stall.
            done.set()

    def run_forever(self) -> None:
        """Standalone serving: start, then drain on SIGTERM/SIGINT and exit."""
        stop_signal = threading.Event()

        def on_signal(signum, _frame):
            stop_signal.set()

        previous_term = signal.signal(signal.SIGTERM, on_signal)
        previous_int = signal.signal(signal.SIGINT, on_signal)
        try:
            host, port = self.start()
            print(
                f"serving on {host}:{port} pid={os.getpid()} "
                f"processes={self.processes} config={self.config.config_hash()}",
                flush=True,
            )
            stop_signal.wait()
            print("draining...", flush=True)
            self.stop()
            print("drained, bye", flush=True)
        finally:
            signal.signal(signal.SIGTERM, previous_term)
            signal.signal(signal.SIGINT, previous_int)

    # ------------------------------------------------------------------
    # worker plumbing (reader threads -> loop thread)
    # ------------------------------------------------------------------
    def _read_worker(self, worker: _Worker) -> None:
        while True:
            try:
                message = worker.conn.recv()
            except (EOFError, OSError):
                if not self._stopped:
                    self._loop.call_soon_threadsafe(self._on_worker_death, worker)
                return
            if message[0] == "drained":
                worker.drained.set()
                return
            self._loop.call_soon_threadsafe(self._on_worker_message, worker, message)

    def _on_worker_message(self, worker: _Worker, message: tuple) -> None:
        kind = message[0]
        if kind == "response":
            _, seq, payload = message
            pending = self._pending.pop(seq, None)
            if pending is None:
                return
            if pending.slot is not None:
                self._slab.free(pending.slot)
            self._answer(pending, payload)
        elif kind == "response-batch":
            _, entries = message
            answers = []
            for seq, payload in entries:
                pending = self._pending.pop(seq, None)
                if pending is None:
                    continue
                if pending.slot is not None:
                    self._slab.free(pending.slot)
                answers.append((pending, payload))
            self._answer_batch(answers)
        elif kind == "stream-reply":
            _, seq, result = message
            pending = self._pending.pop(seq, None)
            if pending is None:
                return
            self._answer(pending, result)
        if not self._pending:
            self._idle.set()

    def _answer(self, pending: _Pending, payload) -> None:
        client = pending.client
        if not client.open:
            return
        if pending.kind == "request":
            if client.codec >= CODEC_BINARY:
                # Binary-speaking clients hold their request object and
                # never need the echo back — that is most of a v1
                # response frame's bytes.
                body = payload
            else:
                body = {**payload, "request": pending.request_wire}
            frame = {"kind": "response", "id": pending.frame_id, "response": body}
        else:
            frame = {"kind": "stream-reply", "id": pending.frame_id, "result": payload}
        try:
            write_frame(client.writer, frame, client.codec)
        except (ConnectionError, OSError):  # pragma: no cover - racing close
            client.open = False

    def _answer_batch(self, answers) -> None:
        """Answer a worker's response batch: one frame per batching client.

        Non-batching (codec-1) clients — possible only for a hostile JSON
        ``request-batch`` — get individual response frames instead.
        """
        by_client: dict[int, tuple[_Client, list]] = {}
        for pending, payload in answers:
            client = pending.client
            if not client.open:
                continue
            if pending.kind != "request" or client.codec < CODEC_BINARY:
                self._answer(pending, payload)
                continue
            entry = by_client.setdefault(id(client), (client, []))
            entry[1].append({"id": pending.frame_id, "response": payload})
        for client, members in by_client.values():
            chunks = [members]
            while chunks:
                chunk = chunks.pop(0)
                frame = {"kind": "response-batch", "responses": chunk}
                try:
                    write_frame(client.writer, frame, client.codec)
                except ProtocolError:
                    # The combined frame exceeds MAX_FRAME_BYTES: split it.
                    # A single response can always ride its own frame (the
                    # worker pipe already carried it).
                    if len(chunk) == 1:
                        write_frame(
                            client.writer,
                            {"kind": "response", **chunk[0]},
                            client.codec,
                        )
                        continue
                    mid = len(chunk) // 2
                    chunks.insert(0, chunk[mid:])
                    chunks.insert(0, chunk[:mid])
                except (ConnectionError, OSError):  # pragma: no cover - racing close
                    client.open = False
                    break

    def _on_worker_death(self, worker: _Worker) -> None:
        """A worker died: isolate the blast radius, re-route its keys."""
        if not worker.alive:
            return
        worker.alive = False
        worker.drained.set()
        self._ring.remove(worker.worker_id)
        dead = [
            (seq, pending)
            for seq, pending in self._pending.items()
            if pending.worker_id == worker.worker_id
        ]
        for seq, pending in dead:
            del self._pending[seq]
            if pending.slot is not None:
                self._slab.free(pending.slot)
            if pending.kind == "request":
                self._answer(
                    pending,
                    {
                        "status": STATUS_ERROR,
                        "outcome": None,
                        "queue_delay_seconds": 0.0,
                        "latency_seconds": 0.0,
                        "batch_size": 0,
                        "cached": False,
                        "error": f"WorkerDied: worker {worker.worker_id} exited mid-request",
                    },
                )
            else:
                self._answer(
                    pending,
                    {"error": f"WorkerDied: worker {worker.worker_id} exited mid-stream"},
                )
        self._streams = {
            key: owner for key, owner in self._streams.items() if owner != worker.worker_id
        }
        if not self._pending:
            self._idle.set()

    def _route(self, key_hash: str) -> _Worker | None:
        while True:
            try:
                worker_id = self._ring.route(key_hash)
            except LookupError:
                return None
            worker = self._workers[worker_id]
            if worker.alive:
                return worker
            # The reader thread has not posted the death yet; drop the
            # worker here and re-route.
            self._on_worker_death(worker)

    def _send_to_worker(self, worker: _Worker, message: tuple) -> bool:
        try:
            worker.conn.send(message)
            return True
        except (BrokenPipeError, OSError):
            self._on_worker_death(worker)
            return False

    # ------------------------------------------------------------------
    # client connections (loop thread)
    # ------------------------------------------------------------------
    async def _handle_client(self, reader, writer) -> None:
        self._client_ids += 1
        client_id = self._client_ids
        client = _Client(writer)
        self._clients[client_id] = client
        try:
            # Explicit coalescing controls batching on this connection;
            # Nagle's algorithm must not add its own 40 ms stalls on top.
            raw_socket = writer.get_extra_info("socket")
            if raw_socket is not None:
                raw_socket.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            hello = await read_frame(reader)
            if hello is None:
                return
            if hello.get("kind") != "hello":
                raise ProtocolError(f"expected hello, got {hello.get('kind')!r}")
            check_version(hello)
            client.codec = negotiate_codec(
                hello.get("codecs"), limit=self.config.wire_codec
            )
            write_frame(
                writer,
                {
                    "kind": "welcome",
                    "version": PROTOCOL_VERSION,
                    "workers": len(self._ring),
                    "config_hash": self.config.config_hash(),
                    "codec": client.codec,
                    "coalesce": {
                        "max_bytes": self.config.coalesce_max_bytes,
                        "max_delay_seconds": self.config.coalesce_max_delay_seconds,
                    },
                },
            )
            await writer.drain()
            while True:
                frame = await read_frame(reader)
                if frame is None or frame.get("kind") == "bye":
                    return
                self._handle_frame(client_id, client, frame)
                await writer.drain()
        except ProtocolError as exc:
            try:
                write_frame(writer, {"kind": "error", "id": None, "error": str(exc)})
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        except (ConnectionError, OSError):
            pass
        finally:
            client.open = False
            del self._clients[client_id]
            self._close_client_streams(client_id)
            try:
                writer.close()
            except OSError:  # pragma: no cover
                pass

    def _close_client_streams(self, client_id: int) -> None:
        """Drop a disconnected client's stream state, here and in workers.

        Without this, every client that drops mid-stream would leak its
        ``_streams`` entries and the worker-side ``ServiceStream`` objects
        for the server's lifetime.
        """
        orphaned = [key for key in self._streams if key[0] == client_id]
        for key in orphaned:
            worker_id = self._streams.pop(key)
            worker = self._workers.get(worker_id)
            if worker is not None and worker.alive:
                self._send_to_worker(worker, ("stream-close", f"{key[0]}:{key[1]}"))

    def _refuse(self, client: _Client, frame_id, reason: str) -> None:
        write_frame(client.writer, {"kind": "error", "id": frame_id, "error": reason})

    def _handle_frame(self, client_id: int, client: _Client, frame: dict) -> None:
        kind = frame.get("kind")
        frame_id = frame.get("id")
        if self._refusing:
            if kind == "request-batch":
                # Refuse member by member: a connection-level (null-id)
                # error would fail the client's unrelated in-flight work.
                for member in frame.get("requests") or ():
                    if isinstance(member, dict):
                        self._refuse(client, member.get("id"), "server is draining")
            else:
                self._refuse(client, frame_id, "server is draining")
            return
        if kind == "request":
            self._handle_request(client, frame)
        elif kind == "request-batch":
            self._handle_request_batch(client, frame)
        elif kind == "stream-open":
            self._handle_stream_open(client_id, client, frame)
        elif kind == "stream-op":
            self._handle_stream_op(client_id, client, frame)
        else:
            self._refuse(client, frame_id, f"unknown frame kind {kind!r}")

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _handle_request(self, client: _Client, frame: dict) -> None:
        frame_id = frame.get("id")
        wire = frame.get("request")
        try:
            key_hash = SessionKey.from_dict(wire["session"]).key_hash()
            # DecodeRequest.from_dict requires a syndrome object; refusing a
            # null/absent one here keeps the worker pipe for decodable work.
            syndrome_wire = wire["syndrome"]
            if not isinstance(syndrome_wire, dict):
                raise TypeError(
                    f"syndrome must be an object, got {type(syndrome_wire).__name__}"
                )
            defects = syndrome_wire.get("defects") or []
        except Exception as exc:
            self._refuse(client, frame_id, f"bad request: {type(exc).__name__}: {exc}")
            return
        worker = self._route(key_hash)
        if worker is None:
            self._answer_no_worker(client, frame_id, wire)
            return
        # Zero-copy defect handoff: defects ride the shared slab, the pipe
        # carries (slot, count) and a defect-less wire form.  Non-integer
        # defects make the pack raise — that is a bad request, not a reason
        # to kill the connection (the slab keeps its slot either way).
        try:
            slot = self._slab.write(defects) if defects else None
        except Exception as exc:
            self._refuse(client, frame_id, f"bad request: {type(exc).__name__}: {exc}")
            return
        if slot is not None:
            wire = {**wire, "syndrome": {**syndrome_wire, "defects": []}}
            count = len(defects)
        else:
            count = 0
        seq = self._next_seq()
        original_wire = frame["request"]
        self._pending[seq] = _Pending(
            "request", client, frame_id, original_wire, slot, worker.worker_id
        )
        self._idle.clear()
        if not self._send_to_worker(worker, ("request", seq, wire, slot, count)):
            # _on_worker_death already answered and cleaned up this pending.
            return

    def _handle_request_batch(self, client: _Client, frame: dict) -> None:
        """One ``request-batch`` frame: validate, group per worker arc, and
        forward each group as a single pipe message over contiguous slab
        slots.  Bad members are refused individually; the rest proceed."""
        members = frame.get("requests")
        if not isinstance(members, list):
            self._refuse(client, frame.get("id"), "bad request-batch: requests must be an array")
            return
        # Binary batch decoding shares one session dict object per table
        # entry, so hashing each distinct session once makes routing cost
        # per *session*, not per member.
        hash_memo: dict[int, str] = {}
        groups: dict[int, list] = {}
        for member in members:
            if not isinstance(member, dict):
                continue
            member_id = member.get("id")
            wire = member.get("request")
            try:
                session_wire = wire["session"]
                key_hash = hash_memo.get(id(session_wire))
                if key_hash is None:
                    key_hash = SessionKey.from_dict(session_wire).key_hash()
                    hash_memo[id(session_wire)] = key_hash
                syndrome_wire = wire["syndrome"]
                if not isinstance(syndrome_wire, dict):
                    raise TypeError(
                        f"syndrome must be an object, got {type(syndrome_wire).__name__}"
                    )
                defects = syndrome_wire.get("defects") or []
            except Exception as exc:
                self._refuse(client, member_id, f"bad request: {type(exc).__name__}: {exc}")
                continue
            worker = self._route(key_hash)
            if worker is None:
                self._answer_no_worker(client, member_id, wire)
                continue
            groups.setdefault(worker.worker_id, []).append(
                (member_id, wire, syndrome_wire, defects)
            )
        for worker_id, entries in groups.items():
            worker = self._workers[worker_id]
            try:
                slots = self._slab.write_batch([entry[3] for entry in entries])
            except Exception:
                # Some member's defects were unpackable; find it (and keep
                # the rest) by falling back to per-member writes.
                slots, kept = [], []
                for entry in entries:
                    try:
                        slots.append(self._slab.write(entry[3]) if entry[3] else None)
                        kept.append(entry)
                    except Exception as exc:
                        self._refuse(
                            client, entry[0], f"bad request: {type(exc).__name__}: {exc}"
                        )
                entries = kept
            pipe_entries = []
            for (member_id, wire, syndrome_wire, defects), slot in zip(entries, slots):
                if slot is not None:
                    send_wire = {**wire, "syndrome": {**syndrome_wire, "defects": []}}
                    count = len(defects)
                else:
                    send_wire, count = wire, 0
                seq = self._next_seq()
                self._pending[seq] = _Pending(
                    "request", client, member_id, wire, slot, worker_id
                )
                pipe_entries.append((seq, send_wire, slot, count))
            if pipe_entries:
                self._idle.clear()
                if not self._send_to_worker(worker, ("request-batch", pipe_entries)):
                    # _on_worker_death already answered and cleaned these up.
                    continue

    def _answer_no_worker(self, client: _Client, frame_id, wire: dict) -> None:
        pending = _Pending("request", client, frame_id, wire, None, -1)
        self._answer(
            pending,
            {
                "status": STATUS_ERROR,
                "outcome": None,
                "queue_delay_seconds": 0.0,
                "latency_seconds": 0.0,
                "batch_size": 0,
                "cached": False,
                "error": "NoWorkers: every worker process has exited",
            },
        )

    def _handle_stream_open(self, client_id: int, client: _Client, frame: dict) -> None:
        frame_id = frame.get("id")
        sid = frame.get("stream")
        try:
            key_hash = SessionKey.from_dict(frame["session"]).key_hash()
        except Exception as exc:
            self._refuse(client, frame_id, f"bad session: {type(exc).__name__}: {exc}")
            return
        worker = self._route(key_hash)
        if worker is None:
            self._refuse(client, frame_id, "NoWorkers: every worker process has exited")
            return
        self._streams[(client_id, sid)] = worker.worker_id
        seq = self._next_seq()
        self._pending[seq] = _Pending("stream", client, frame_id, None, None, worker.worker_id)
        self._idle.clear()
        self._send_to_worker(
            worker,
            (
                "stream-open",
                seq,
                f"{client_id}:{sid}",
                frame["session"],
                frame.get("window"),
                frame.get("commit_depth"),
            ),
        )

    def _handle_stream_op(self, client_id: int, client: _Client, frame: dict) -> None:
        frame_id = frame.get("id")
        sid = frame.get("stream")
        worker_id = self._streams.get((client_id, sid))
        if worker_id is None:
            self._refuse(client, frame_id, f"unknown stream {sid!r}")
            return
        worker = self._workers[worker_id]
        if not worker.alive:
            self._refuse(client, frame_id, f"WorkerDied: stream {sid!r} lost its worker")
            return
        op = frame.get("op")
        if op == "finalize":
            self._streams.pop((client_id, sid), None)
        seq = self._next_seq()
        self._pending[seq] = _Pending("stream", client, frame_id, None, None, worker.worker_id)
        self._idle.clear()
        self._send_to_worker(
            worker, ("stream-op", seq, f"{client_id}:{sid}", op, frame.get("payload"))
        )
