"""The length-prefixed wire protocol of the network service (codecs v1/v2).

One frame = a 4-byte big-endian payload length followed by the payload.  Two
payload codecs share that framing:

* **Codec 1 (JSON)** — canonical JSON (:func:`repro.api.hashing.canonical_json`:
  sorted keys, no whitespace), the same canonical form the content hashes
  use, so a frame's bytes are a pure function of its logical content.  Every
  frame kind can ride this codec; control frames (handshake, errors, drain,
  streams) always do.
* **Codec 2 (binary)** — a struct-packed little-endian format for the four
  hot kinds only (``request``/``response`` and their batch forms).  The
  first payload byte is the magic ``0xB2`` — an impossible first byte of a
  JSON object (``{`` = ``0x7B``) — so the receiver sniffs the codec per
  frame and one read path serves both.  Defect/edge indices travel as packed
  ``uint32`` arrays instead of JSON int lists, batch frames deduplicate the
  per-request session dict into a shared session table, and binary
  ``response`` frames omit the request echo (the client holds the request).

The codec is negotiated at the handshake: the client's ``hello`` carries the
codec list it speaks (``"codecs": [2, 1]``; absent means a v1-only client),
the server answers with the chosen ``"codec"`` in its ``welcome``.  Either
side may still *send* codec-1 frames afterwards — a frame a binary encoder
cannot represent (huge integers, exotic payloads) silently falls back to
canonical JSON, which the sniffing receiver handles identically.
:data:`PROTOCOL_VERSION` stays 1: codec 2 is a negotiated capability, not an
incompatible envelope change.

Frame kinds (client → server unless noted; * = binary-capable):

========================  ====================================================
``hello``                 Opens a connection: ``{kind, version, client,
                          codecs}`` (``codecs`` absent = JSON-only peer).
``welcome``               (server) Handshake reply: ``{kind, version,
                          workers, config_hash, codec, coalesce}`` — the
                          hash of the server's
                          :class:`repro.service.ServiceConfig`, the
                          negotiated codec, and the server's suggested
                          client-side coalescing knobs.
``request`` *             One decode request: ``{kind, id, request}`` where
                          ``request`` is
                          :meth:`repro.service.DecodeRequest.to_dict`.
``response`` *            (server) The answer: ``{kind, id, response}``.
                          Codec-1 responses embed the request echo; binary
                          responses never do.
``request-batch`` *       N requests in one frame: ``{kind, requests:
                          [{id, request}, ...]}``.
``response-batch`` *      (server) N answers in one frame: ``{kind,
                          responses: [{id, response}, ...]}``.
``stream-open``           Open a streaming session: ``{kind, id, stream,
                          session, window, commit_depth}``.
``stream-op``             One stream operation: ``{kind, id, stream, op,
                          payload}`` with ``op`` ∈ begin/push/finalize.
``stream-reply``          (server) Stream result: ``{kind, id, result}``.
``error``                 (server) Protocol-level failure: ``{kind, id,
                          error}`` (``id`` null for connection-level errors).
``drain``                 (server) The server is draining: already-admitted
                          work will still be answered, new work will not.
``bye``                   Client is closing the connection.
========================  ====================================================

Binary layouts (all little-endian; ``blob`` = u32 length + UTF-8 bytes,
``u32[]`` = u32 count + packed u32 values):

* ``request``: ``0xB2 0x01`` · i64 frame id · session blob (canonical JSON)
  · syndrome · i64 request_id.
* ``syndrome``: u8 flip (0 = null, 1 = false, 2 = true) · u32[] defects ·
  u32[] error_edges.
* ``response``: ``0xB2 0x02`` · i64 frame id · body.
* body: status blob · u8 flags (1 cached, 2 has-outcome, 4 has-error) ·
  f64 queue_delay · f64 latency · u32 batch_size · [error blob] ·
  [outcome].
* ``outcome``: u8 flags (1 has-result, 2 has-correction) · u32 defect_count
  · u32 scale_retries · [u32 n_pairs · n×(i32, i32) · u32 n_boundary ·
  n×(i32, i32) · i64 weight] · [u32[] correction] · u32 n_counters ·
  n×(key blob · i64 value).
* ``request-batch``: ``0xB2 0x03`` · u16 n_sessions · n×session blob ·
  u32 n_members · n×(i64 frame id · u16 session index · i64 request_id ·
  syndrome).
* ``response-batch``: ``0xB2 0x04`` · u32 n_members · n×(i64 frame id ·
  body).

The module offers both blocking-socket helpers (the synchronous client) and
``asyncio`` stream helpers (the server) over the identical byte format.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct

from ...api.hashing import canonical_json

#: Version tag of this wire protocol; bumped on any incompatible change.
#: The binary codec is *not* a version bump — it is negotiated per
#: connection and falls back to codec 1 frame by frame.
PROTOCOL_VERSION = 1

#: The base canonical-JSON payload codec every peer speaks.
CODEC_JSON = 1

#: The struct-packed binary payload codec (hot frame kinds only).
CODEC_BINARY = 2

#: Codecs this implementation can decode, best first.
SUPPORTED_CODECS = (CODEC_BINARY, CODEC_JSON)

#: Upper bound on one frame's payload (guards against hostile/corrupt length
#: prefixes allocating unbounded buffers; generous for any real batch).
MAX_FRAME_BYTES = 16 << 20

_LENGTH = struct.Struct(">I")

#: First payload byte of every binary frame.  ``0xB2`` can never open a
#: canonical-JSON payload (objects start with ``{``), so the receiver can
#: sniff the codec without negotiation state.
_MAGIC = 0xB2

_KIND_REQUEST = 0x01
_KIND_RESPONSE = 0x02
_KIND_REQUEST_BATCH = 0x03
_KIND_RESPONSE_BATCH = 0x04

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_I32_PAIR = struct.Struct("<ii")
_SINGLE_HEAD = struct.Struct("<BBq")  # magic, kind tag, frame id


class ProtocolError(RuntimeError):
    """A malformed, oversized, or version-incompatible frame."""


def negotiate_codec(offered, limit: int = CODEC_BINARY) -> int:
    """The best codec of ``offered`` both sides speak (≤ ``limit``).

    ``offered`` is the ``codecs`` list of a ``hello`` frame; ``None`` or
    empty means a legacy JSON-only peer.  Codec 1 is the implicit floor —
    every peer speaks it by construction.

    >>> negotiate_codec([2, 1])
    2
    >>> negotiate_codec(None)
    1
    >>> negotiate_codec([2, 1], limit=1)
    1
    """
    best = CODEC_JSON
    if not offered:
        return best
    for codec in offered:
        if isinstance(codec, int) and codec in SUPPORTED_CODECS and codec <= limit:
            best = max(best, codec)
    return best


# ---------------------------------------------------------------------------
# binary codec: encoders
# ---------------------------------------------------------------------------
def _put_blob(out: bytearray, text: str) -> None:
    data = text.encode("utf-8")
    out += _U32.pack(len(data))
    out += data


def _put_u32_array(out: bytearray, values) -> None:
    values = [int(v) for v in values]
    out += _U32.pack(len(values))
    out += struct.pack(f"<{len(values)}I", *values)


def _put_syndrome(out: bytearray, syndrome: dict) -> None:
    if syndrome.get("erasures"):
        # The compact layout has no erasure slot; raising here makes
        # _encode_binary return None, so the frame ships as a codec-1
        # canonical-JSON frame instead — which carries every Syndrome field.
        raise ValueError("binary codec does not encode heralded erasures")
    flip = syndrome.get("logical_flip")
    out += _U8.pack(0 if flip is None else (2 if flip else 1))
    _put_u32_array(out, syndrome.get("defects", ()))
    _put_u32_array(out, syndrome.get("error_edges", ()))


def _put_outcome(out: bytearray, outcome: dict) -> None:
    result = outcome.get("result")
    correction = outcome.get("correction")
    out += _U8.pack((1 if result is not None else 0) | (2 if correction is not None else 0))
    out += _U32.pack(int(outcome.get("defect_count", 0)))
    out += _U32.pack(int(outcome.get("scale_retries", 0)))
    if result is not None:
        pairs = result.get("pairs", ())
        out += _U32.pack(len(pairs))
        for u, v in pairs:
            out += _I32_PAIR.pack(int(u), int(v))
        boundary = result.get("boundary_vertices", {})
        out += _U32.pack(len(boundary))
        for defect in sorted(boundary, key=int):
            out += _I32_PAIR.pack(int(defect), int(boundary[defect]))
        out += _I64.pack(int(result.get("weight", 0)))
    if correction is not None:
        _put_u32_array(out, correction)
    counters = outcome.get("counters", {})
    out += _U32.pack(len(counters))
    for key in sorted(counters):
        _put_blob(out, key)
        out += _I64.pack(int(counters[key]))


def _put_response_body(out: bytearray, payload: dict) -> None:
    _put_blob(out, str(payload.get("status", "ok")))
    outcome = payload.get("outcome")
    error = payload.get("error")
    out += _U8.pack(
        (1 if payload.get("cached") else 0)
        | (2 if outcome is not None else 0)
        | (4 if error is not None else 0)
    )
    out += _F64.pack(float(payload.get("queue_delay_seconds", 0.0)))
    out += _F64.pack(float(payload.get("latency_seconds", 0.0)))
    out += _U32.pack(int(payload.get("batch_size", 0)))
    if error is not None:
        _put_blob(out, str(error))
    if outcome is not None:
        _put_outcome(out, outcome)


def _encode_request(frame: dict) -> bytes:
    request = frame["request"]
    out = bytearray(_SINGLE_HEAD.pack(_MAGIC, _KIND_REQUEST, int(frame["id"])))
    _put_blob(out, canonical_json(request["session"]))
    _put_syndrome(out, request["syndrome"])
    out += _I64.pack(int(request.get("request_id", 0)))
    return bytes(out)


def _encode_response(frame: dict) -> bytes:
    out = bytearray(_SINGLE_HEAD.pack(_MAGIC, _KIND_RESPONSE, int(frame["id"])))
    _put_response_body(out, frame["response"])
    return bytes(out)


def _encode_request_batch(frame: dict) -> bytes:
    members = frame["requests"]
    sessions: list[str] = []
    index_of: dict[str, int] = {}
    # Two-level dedupe: object identity first (free — a batch built from one
    # client's requests shares session dict objects), canonical content
    # second, so the per-member cost is struct packs, not JSON encodes.
    index_by_identity: dict[int, int] = {}
    encoded_members = bytearray()
    for member in members:
        request = member["request"]
        session = request["session"]
        index = index_by_identity.get(id(session))
        if index is None:
            blob = canonical_json(session)
            index = index_of.get(blob)
            if index is None:
                index = len(sessions)
                if index > 0xFFFF:
                    raise ValueError("too many distinct sessions for one batch frame")
                index_of[blob] = index
                sessions.append(blob)
            index_by_identity[id(session)] = index
        encoded_members += _I64.pack(int(member["id"]))
        encoded_members += _U16.pack(index)
        encoded_members += _I64.pack(int(request.get("request_id", 0)))
        _put_syndrome(encoded_members, request["syndrome"])
    out = bytearray((_MAGIC, _KIND_REQUEST_BATCH))
    out += _U16.pack(len(sessions))
    for blob in sessions:
        _put_blob(out, blob)
    out += _U32.pack(len(members))
    out += encoded_members
    return bytes(out)


def _encode_response_batch(frame: dict) -> bytes:
    members = frame["responses"]
    out = bytearray((_MAGIC, _KIND_RESPONSE_BATCH))
    out += _U32.pack(len(members))
    for member in members:
        out += _I64.pack(int(member["id"]))
        _put_response_body(out, member["response"])
    return bytes(out)


_BINARY_ENCODERS = {
    "request": _encode_request,
    "response": _encode_response,
    "request-batch": _encode_request_batch,
    "response-batch": _encode_response_batch,
}


def _encode_binary(frame: dict) -> bytes | None:
    """Binary payload of ``frame``, or ``None`` for the JSON fallback.

    Only the hot kinds have binary layouts; a frame a layout cannot
    represent (out-of-range integers, a null id, non-numeric defects)
    falls back to codec 1 rather than failing — both codecs carry the
    same logical frame, so the receiver cannot tell the difference.
    """
    encoder = _BINARY_ENCODERS.get(frame.get("kind"))
    if encoder is None:
        return None
    try:
        return encoder(frame)
    except (KeyError, TypeError, ValueError, OverflowError, struct.error):
        return None


# ---------------------------------------------------------------------------
# binary codec: decoders
# ---------------------------------------------------------------------------
class _Reader:
    """Bounds-checked cursor over one binary payload."""

    __slots__ = ("payload", "offset")

    def __init__(self, payload: bytes) -> None:
        self.payload = payload
        self.offset = 0

    def unpack(self, spec: struct.Struct):
        try:
            values = spec.unpack_from(self.payload, self.offset)
        except struct.error:
            raise ProtocolError("truncated binary frame") from None
        self.offset += spec.size
        return values

    def blob(self) -> str:
        (length,) = self.unpack(_U32)
        end = self.offset + length
        if end > len(self.payload):
            raise ProtocolError("truncated binary frame")
        data = self.payload[self.offset : end]
        self.offset = end
        try:
            return data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"undecodable blob: {exc}") from None

    def u32_array(self) -> list[int]:
        (count,) = self.unpack(_U32)
        if count * 4 > len(self.payload) - self.offset:
            raise ProtocolError("truncated binary frame")
        values = list(struct.unpack_from(f"<{count}I", self.payload, self.offset))
        self.offset += count * 4
        return values


def _read_syndrome(reader: _Reader) -> dict:
    (flip,) = reader.unpack(_U8)
    if flip > 2:
        raise ProtocolError(f"bad logical_flip tag {flip}")
    return {
        "defects": reader.u32_array(),
        "error_edges": reader.u32_array(),
        "logical_flip": None if flip == 0 else flip == 2,
    }


def _read_outcome(reader: _Reader) -> dict:
    (flags,) = reader.unpack(_U8)
    (defect_count,) = reader.unpack(_U32)
    (scale_retries,) = reader.unpack(_U32)
    result = None
    if flags & 1:
        (n_pairs,) = reader.unpack(_U32)
        pairs = [list(reader.unpack(_I32_PAIR)) for _ in range(n_pairs)]
        (n_boundary,) = reader.unpack(_U32)
        boundary = {}
        for _ in range(n_boundary):
            defect, virtual = reader.unpack(_I32_PAIR)
            boundary[str(defect)] = virtual
        (weight,) = reader.unpack(_I64)
        result = {"pairs": pairs, "boundary_vertices": boundary, "weight": weight}
    correction = reader.u32_array() if flags & 2 else None
    (n_counters,) = reader.unpack(_U32)
    counters = {}
    for _ in range(n_counters):
        key = reader.blob()
        (value,) = reader.unpack(_I64)
        counters[key] = value
    return {
        "result": result,
        "correction": correction,
        "defect_count": defect_count,
        "counters": counters,
        "scale_retries": scale_retries,
    }


def _read_response_body(reader: _Reader) -> dict:
    status = reader.blob()
    (flags,) = reader.unpack(_U8)
    (queue_delay,) = reader.unpack(_F64)
    (latency,) = reader.unpack(_F64)
    (batch_size,) = reader.unpack(_U32)
    error = reader.blob() if flags & 4 else None
    outcome = _read_outcome(reader) if flags & 2 else None
    return {
        "status": status,
        "outcome": outcome,
        "queue_delay_seconds": queue_delay,
        "latency_seconds": latency,
        "batch_size": batch_size,
        "cached": bool(flags & 1),
        "error": error,
    }


def _parse_session_blob(blob: str) -> dict:
    try:
        session = json.loads(blob)
    except ValueError as exc:
        raise ProtocolError(f"undecodable session blob: {exc}") from None
    if not isinstance(session, dict):
        raise ProtocolError("session blob is not an object")
    return session


def _decode_binary(payload: bytes) -> dict:
    reader = _Reader(payload)
    if len(payload) < 2:
        raise ProtocolError("truncated binary frame")
    kind = payload[1]
    if kind in (_KIND_REQUEST, _KIND_RESPONSE):
        _, _, frame_id = reader.unpack(_SINGLE_HEAD)
        if kind == _KIND_REQUEST:
            session = _parse_session_blob(reader.blob())
            syndrome = _read_syndrome(reader)
            (request_id,) = reader.unpack(_I64)
            return {
                "kind": "request",
                "id": frame_id,
                "request": {
                    "session": session,
                    "syndrome": syndrome,
                    "request_id": request_id,
                },
            }
        return {"kind": "response", "id": frame_id, "response": _read_response_body(reader)}
    if kind == _KIND_REQUEST_BATCH:
        reader.offset = 2
        (n_sessions,) = reader.unpack(_U16)
        # One parsed dict per table entry, shared by reference across the
        # members that cite it — downstream per-session memoisation (the
        # server's key-hash cache) keys on object identity.
        sessions = [_parse_session_blob(reader.blob()) for _ in range(n_sessions)]
        (n_members,) = reader.unpack(_U32)
        members = []
        for _ in range(n_members):
            (frame_id,) = reader.unpack(_I64)
            (session_index,) = reader.unpack(_U16)
            if session_index >= n_sessions:
                raise ProtocolError(f"session index {session_index} out of table")
            (request_id,) = reader.unpack(_I64)
            syndrome = _read_syndrome(reader)
            members.append(
                {
                    "id": frame_id,
                    "request": {
                        "session": sessions[session_index],
                        "syndrome": syndrome,
                        "request_id": request_id,
                    },
                }
            )
        return {"kind": "request-batch", "requests": members}
    if kind == _KIND_RESPONSE_BATCH:
        reader.offset = 2
        (n_members,) = reader.unpack(_U32)
        members = []
        for _ in range(n_members):
            (frame_id,) = reader.unpack(_I64)
            members.append({"id": frame_id, "response": _read_response_body(reader)})
        return {"kind": "response-batch", "responses": members}
    raise ProtocolError(f"unknown binary frame kind 0x{kind:02x}")


# ---------------------------------------------------------------------------
# framing (codec-agnostic)
# ---------------------------------------------------------------------------
def encode_frame(frame: dict, codec: int = CODEC_JSON) -> bytes:
    """Length-prefixed bytes of one frame in the given payload codec.

    Codec 2 applies to the hot kinds only; everything else (and any frame
    the binary layouts cannot represent) is emitted as canonical JSON —
    the receiver sniffs the payload codec per frame.
    """
    payload = _encode_binary(frame) if codec >= CODEC_BINARY else None
    if payload is None:
        payload = canonical_json(frame).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    """Parse one frame payload (either codec) into its logical frame dict."""
    if payload[:1] == b"\xb2":
        return _decode_binary(payload)
    try:
        frame = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(frame, dict) or "kind" not in frame:
        raise ProtocolError("frame is not an object with a 'kind'")
    return frame


def check_version(frame: dict) -> None:
    """Reject a handshake frame of any other protocol version."""
    version = frame.get("version")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {version!r}, "
            f"this side speaks {PROTOCOL_VERSION}"
        )


# ---------------------------------------------------------------------------
# blocking-socket framing (synchronous client)
# ---------------------------------------------------------------------------
def write_frame_sync(sock: socket.socket, frame: dict, codec: int = CODEC_JSON) -> None:
    """Send one frame over a blocking socket."""
    sock.sendall(encode_frame(frame, codec))


def _recv_exact(sock: socket.socket, count: int, *, eof_ok: bool = False) -> bytes | None:
    """Read exactly ``count`` bytes; ``None`` on clean EOF when ``eof_ok``.

    EOF after a partial read is always a mid-frame connection loss.
    """
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_payload_sync(sock: socket.socket) -> bytes:
    """Read one frame's raw payload bytes (raises ConnectionError on EOF)."""
    header = _recv_exact(sock, _LENGTH.size, eof_ok=True)
    if header is None:
        raise ConnectionError("connection closed")
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    payload = _recv_exact(sock, length)
    assert payload is not None  # eof_ok=False never returns None
    return payload


def read_frame_sync(sock: socket.socket) -> dict:
    """Read one frame from a blocking socket (raises ConnectionError on EOF)."""
    return decode_payload(read_payload_sync(sock))


# ---------------------------------------------------------------------------
# asyncio framing (server)
# ---------------------------------------------------------------------------
async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ConnectionError("connection closed mid-frame") from None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ConnectionError("connection closed mid-frame") from None
    return decode_payload(payload)


def write_frame(writer: asyncio.StreamWriter, frame: dict, codec: int = CODEC_JSON) -> None:
    """Queue one frame on an asyncio writer (call from the loop thread)."""
    writer.write(encode_frame(frame, codec))
