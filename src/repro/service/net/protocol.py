"""The length-prefixed canonical-JSON wire protocol of the network service.

One frame = a 4-byte big-endian payload length followed by that many bytes of
canonical JSON (:func:`repro.api.hashing.canonical_json`: sorted keys, no
whitespace) — the same canonical form the content hashes use, so a frame's
bytes are a pure function of its logical content.  Every frame is a JSON
object with a ``kind`` and, on the very first frame of a connection, a
protocol ``version``; unknown versions are rejected at the handshake, never
mid-stream.

Frame kinds (client → server unless noted):

========================  ====================================================
``hello``                 Opens a connection: ``{kind, version, client}``.
``welcome``               (server) Handshake reply: ``{kind, version,
                          workers, config_hash}`` — the hash of the server's
                          :class:`repro.service.ServiceConfig`, so a client
                          can confirm *what* it is talking to.
``request``               One decode request: ``{kind, id, request}`` where
                          ``request`` is
                          :meth:`repro.service.DecodeRequest.to_dict`.
``response``              (server) The answer: ``{kind, id, response}`` where
                          ``response`` is
                          :meth:`repro.service.DecodeResponse.to_dict`.
``stream-open``           Open a streaming session: ``{kind, id, stream,
                          session, window, commit_depth}``.
``stream-op``             One stream operation: ``{kind, id, stream, op,
                          payload}`` with ``op`` ∈ begin/push/finalize.
``stream-reply``          (server) Stream result: ``{kind, id, result}``
                          (``begin`` → null, ``push`` → counter dict,
                          ``finalize`` → outcome dict).
``error``                 (server) Protocol-level failure: ``{kind, id,
                          error}`` (``id`` null for connection-level errors).
``drain``                 (server) The server is draining: already-admitted
                          work will still be answered, new work will not be
                          accepted — reconnect elsewhere/later.
``bye``                   Client is closing the connection.
========================  ====================================================

The module offers both blocking-socket helpers (the synchronous client) and
``asyncio`` stream helpers (the server) over the identical byte format.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct

from ...api.hashing import canonical_json

#: Version tag of this wire protocol; bumped on any incompatible change.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's payload (guards against hostile/corrupt length
#: prefixes allocating unbounded buffers; generous for any real batch).
MAX_FRAME_BYTES = 16 << 20

_LENGTH = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A malformed, oversized, or version-incompatible frame."""


def encode_frame(frame: dict) -> bytes:
    """Length-prefixed canonical-JSON bytes of one frame."""
    payload = canonical_json(frame).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    """Parse one frame payload; every frame must be a JSON object."""
    try:
        frame = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(frame, dict) or "kind" not in frame:
        raise ProtocolError("frame is not an object with a 'kind'")
    return frame


def check_version(frame: dict) -> None:
    """Reject a handshake frame of any other protocol version."""
    version = frame.get("version")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {version!r}, "
            f"this side speaks {PROTOCOL_VERSION}"
        )


# ---------------------------------------------------------------------------
# blocking-socket framing (synchronous client)
# ---------------------------------------------------------------------------
def write_frame_sync(sock: socket.socket, frame: dict) -> None:
    """Send one frame over a blocking socket."""
    sock.sendall(encode_frame(frame))


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        chunk = sock.recv(count)
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def read_frame_sync(sock: socket.socket) -> dict:
    """Read one frame from a blocking socket (raises ConnectionError on EOF)."""
    header = sock.recv(_LENGTH.size)
    if not header:
        raise ConnectionError("connection closed")
    while len(header) < _LENGTH.size:
        more = sock.recv(_LENGTH.size - len(header))
        if not more:
            raise ConnectionError("connection closed mid-frame")
        header += more
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    return decode_payload(_recv_exact(sock, length))


# ---------------------------------------------------------------------------
# asyncio framing (server)
# ---------------------------------------------------------------------------
async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ConnectionError("connection closed mid-frame") from None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ConnectionError("connection closed mid-frame") from None
    return decode_payload(payload)


def write_frame(writer: asyncio.StreamWriter, frame: dict) -> None:
    """Queue one frame on an asyncio writer (call from the loop thread)."""
    writer.write(encode_frame(frame))
