"""Network serving of the decode service: asyncio front end, process workers.

The in-process :class:`~repro.service.DecodeService` scales across threads
but not across cores (the decoders are pure Python under the GIL).  This
package puts N *processes* behind one TCP endpoint without changing a single
decoded bit:

* :mod:`~repro.service.net.protocol` — the length-prefixed wire protocol
  (version-tagged; sync and asyncio framings) with two negotiated payload
  codecs: canonical JSON (codec 1) and the struct-packed binary format
  (codec 2) with batch frames and per-frame JSON fallback.
* :mod:`~repro.service.net.server` — :class:`NetServer`, the asyncio front
  end: consistent-hash routing of session keys to worker processes,
  whole-batch forwarding of ``request-batch`` frames, graceful drain on
  stop/SIGTERM, isolated errors on worker death.
* :mod:`~repro.service.net.worker` — the worker-process entry point; each
  worker hosts an ordinary in-process service.
* :mod:`~repro.service.net.client` — :class:`NetClient`, the synchronous
  pipelined client mirroring the ``DecodeService`` surface, with
  Nagle-style request coalescing and per-worker batch packing.
* :mod:`~repro.service.net.router` — :class:`HashRing`.
* :mod:`~repro.service.net.shm` — shared-memory graph pack and syndrome
  slab (the zero-copy data plane).
* :mod:`~repro.service.net.bench` — digest-identical network replay, the
  process-scaling series, and the v2-vs-v1 wire comparison of
  ``BENCH_service.json``.
"""

from .bench import replay_network, scaling_bench, wire_comparison
from .client import NetClient, NetStream, ServerDrainingError
from .protocol import (
    CODEC_BINARY,
    CODEC_JSON,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    negotiate_codec,
)
from .router import HashRing
from .server import NetServer
from .shm import SharedGraphPack, SyndromeSlab

__all__ = [
    "CODEC_BINARY",
    "CODEC_JSON",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "HashRing",
    "NetClient",
    "NetServer",
    "NetStream",
    "ProtocolError",
    "ServerDrainingError",
    "SharedGraphPack",
    "SyndromeSlab",
    "negotiate_codec",
    "replay_network",
    "scaling_bench",
    "wire_comparison",
]
