"""Shared-memory transport of immutable graphs and hot syndrome bytes.

Two pieces of the network server's data plane live in
:mod:`multiprocessing.shared_memory` segments mapped into every worker
process:

* :class:`SharedGraphPack` — the immutable decoding-graph arrays, packed
  once by the server (vertex coordinates, edge endpoints/weights/
  probabilities/kinds as typed arrays plus a JSON header) and mapped
  read-only by each worker.  A worker reconstructs its
  :class:`~repro.graphs.decoding_graph.DecodingGraph` *objects* from the
  mapped arrays on first use — the bytes are shared and never re-sent per
  process; only the lightweight object wrappers are per-worker (CPython
  objects cannot themselves live in shared memory).
* :class:`SyndromeSlab` — a slot-granular scratch region for the per-request
  defect lists.  The front end writes a request's defect indices straight
  into a free slot and passes ``(slot, count)`` down the worker pipe instead
  of serialising the syndrome into JSON; the worker reads the integers back
  out of the mapping.  Slots are owned by the server: it allocates on
  submit, frees on response (or worker death), and falls back to inline JSON
  when the slab is exhausted or a defect list exceeds the slot capacity —
  the fallback changes bytes moved, never outcomes.
"""

from __future__ import annotations

import json
import struct
import threading
from multiprocessing import shared_memory

import numpy as np

from ...graphs.decoding_graph import DecodingGraph, Edge, Vertex

_HEADER_LENGTH = struct.Struct(">Q")

#: Array item codes used by the pack (fixed, so reader and writer agree).
_INT = "q"  # signed 64-bit
_FLOAT = "d"  # IEEE double
_BYTE = "B"  # unsigned 8-bit (bools, kind-vocabulary indices)

_ITEM_SIZE = {_INT: 8, _FLOAT: 8, _BYTE: 1}


def _aligned(offset: int, code: str) -> int:
    size = _ITEM_SIZE[code]
    return (offset + size - 1) // size * size


class SharedGraphPack:
    """Decoding graphs packed into one shared-memory segment.

    Created by the server (:meth:`create`), attached by name in each worker
    (:meth:`attach`).  Attached segments are never unlinked by workers — the
    creating server owns the segment lifetime.
    """

    def __init__(self, shm: shared_memory.SharedMemory, header: dict, owner: bool) -> None:
        self._shm = shm
        self._header = header
        self._owner = owner
        self._graphs: dict[str, DecodingGraph] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, graphs: dict[str, DecodingGraph]) -> "SharedGraphPack":
        """Pack ``{graph key -> graph}`` into a fresh shared segment."""
        header: dict = {"graphs": {}}
        chunks: list[bytes] = []
        offset = 0

        def put(values, code: str) -> dict:
            nonlocal offset
            data = struct.pack(f"<{len(values)}{code}", *values)
            aligned = _aligned(offset, code)
            if aligned != offset:
                chunks.append(b"\x00" * (aligned - offset))
                offset = aligned
            entry = {"offset": offset, "count": len(values), "code": code}
            chunks.append(data)
            offset += len(data)
            return entry

        for key, graph in graphs.items():
            kinds: list[str] = []
            kind_index: dict[str, int] = {}
            for edge in graph.edges:
                if edge.kind not in kind_index:
                    kind_index[edge.kind] = len(kinds)
                    kinds.append(edge.kind)
            header["graphs"][key] = {
                "metadata": graph.metadata,
                "kinds": kinds,
                "vertex_layer": put([v.layer for v in graph.vertices], _INT),
                "vertex_row": put([v.row for v in graph.vertices], _INT),
                "vertex_col": put([v.col for v in graph.vertices], _INT),
                "vertex_virtual": put([int(v.is_virtual) for v in graph.vertices], _BYTE),
                "edge_u": put([e.u for e in graph.edges], _INT),
                "edge_v": put([e.v for e in graph.edges], _INT),
                "edge_weight": put([e.weight for e in graph.edges], _INT),
                "edge_probability": put([e.probability for e in graph.edges], _FLOAT),
                "edge_observable": put([int(e.observable) for e in graph.edges], _BYTE),
                "edge_kind": put([kind_index[e.kind] for e in graph.edges], _BYTE),
            }
        payload = b"".join(chunks)
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        total = _HEADER_LENGTH.size + len(header_bytes) + len(payload)
        # Payload offsets are relative to the payload start; record where
        # that is so attach() can rebase without re-parsing lengths.
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        shm.buf[: _HEADER_LENGTH.size] = _HEADER_LENGTH.pack(len(header_bytes))
        shm.buf[_HEADER_LENGTH.size : _HEADER_LENGTH.size + len(header_bytes)] = header_bytes
        base = _HEADER_LENGTH.size + len(header_bytes)
        shm.buf[base : base + len(payload)] = payload
        header["payload_base"] = base
        return cls(shm, header, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SharedGraphPack":
        """Map an existing pack by segment name (worker side)."""
        shm = shared_memory.SharedMemory(name=name)
        (header_length,) = _HEADER_LENGTH.unpack_from(shm.buf, 0)
        header_end = _HEADER_LENGTH.size + header_length
        header = json.loads(bytes(shm.buf[_HEADER_LENGTH.size : header_end]))
        header["payload_base"] = _HEADER_LENGTH.size + header_length
        return cls(shm, header, owner=False)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The segment name workers attach by."""
        return self._shm.name

    def keys(self) -> list[str]:
        """The graph keys packed into this segment."""
        return sorted(self._header["graphs"])

    def _read(self, entry: dict) -> list:
        base = self._header["payload_base"] + entry["offset"]
        code = entry["code"]
        return list(
            struct.unpack_from(f"<{entry['count']}{code}", self._shm.buf, base)
        )

    def graph(self, key: str) -> DecodingGraph:
        """Reconstruct (and memoise) the graph stored under ``key``."""
        if key in self._graphs:
            return self._graphs[key]
        entry = self._header["graphs"][key]
        layers = self._read(entry["vertex_layer"])
        rows = self._read(entry["vertex_row"])
        cols = self._read(entry["vertex_col"])
        virtual = self._read(entry["vertex_virtual"])
        vertices = [
            Vertex(index=i, layer=layers[i], row=rows[i], col=cols[i], is_virtual=bool(virtual[i]))
            for i in range(len(layers))
        ]
        us = self._read(entry["edge_u"])
        vs = self._read(entry["edge_v"])
        weights = self._read(entry["edge_weight"])
        probabilities = self._read(entry["edge_probability"])
        observables = self._read(entry["edge_observable"])
        kind_codes = self._read(entry["edge_kind"])
        kinds = entry["kinds"]
        edges = [
            Edge(
                index=i,
                u=us[i],
                v=vs[i],
                weight=weights[i],
                probability=probabilities[i],
                observable=bool(observables[i]),
                kind=kinds[kind_codes[i]],
            )
            for i in range(len(us))
        ]
        graph = DecodingGraph(vertices, edges, metadata=entry["metadata"])
        self._graphs[key] = graph
        return graph

    # ------------------------------------------------------------------
    # lifetime
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unmap this process's view; the owner also unlinks the segment."""
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double close
                pass


class SyndromeSlab:
    """A slot-granular shared scratch region for per-request defect lists.

    ``slots`` fixed-capacity slots of ``slot_capacity`` int64 defect indices
    each.  The server is the only writer and the only allocator; workers
    only read, so no cross-process locking is needed — a slot handed to a
    worker is immutable until the server frees it on response.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        slots: int,
        slot_capacity: int,
        owner: bool,
    ) -> None:
        self._shm = shm
        self.slots = slots
        self.slot_capacity = slot_capacity
        self._owner = owner
        self._free: list[int] = list(range(slots)) if owner else []
        self._lock = threading.Lock()

    @classmethod
    def create(cls, slots: int = 256, slot_capacity: int = 512) -> "SyndromeSlab":
        if slots < 1 or slot_capacity < 1:
            raise ValueError("slots and slot_capacity must be >= 1")
        shm = shared_memory.SharedMemory(create=True, size=slots * slot_capacity * 8)
        return cls(shm, slots, slot_capacity, owner=True)

    @classmethod
    def attach(cls, name: str, slots: int, slot_capacity: int) -> "SyndromeSlab":
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, slots, slot_capacity, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    def write(self, defects) -> int | None:
        """Write a defect list into a free slot; ``None`` → use the inline
        JSON fallback (slab exhausted or the list exceeds slot capacity)."""
        values = list(defects)
        if len(values) > self.slot_capacity:
            return None
        with self._lock:
            if not self._free:
                return None
            slot = self._free.pop()
        if values:
            try:
                struct.pack_into(
                    f"<{len(values)}q", self._shm.buf, slot * self.slot_capacity * 8, *values
                )
            except (struct.error, TypeError):
                # Unpackable defects (non-integers) are the caller's problem;
                # the slot must not leak with them.
                self.free(slot)
                raise
        return slot

    def _take_run(self, count: int) -> int | None:
        """Pop ``count`` consecutive slot numbers off the free list.

        Caller holds ``_lock``.  Returns the run's first slot, or ``None``
        when the free list holds no contiguous run that long (fragmented or
        simply too few slots).
        """
        if count > len(self._free):
            return None
        self._free.sort()
        run_start = 0
        for index in range(1, len(self._free) + 1):
            if index == len(self._free) or self._free[index] != self._free[index - 1] + 1:
                if index - run_start >= count:
                    start = self._free[run_start]
                    del self._free[run_start : run_start + count]
                    return start
                run_start = index
        return None

    def write_batch(self, defect_lists) -> list[int | None]:
        """Write many defect lists at once; returns one slot (or ``None``,
        the inline fallback) per list.

        The batch path allocates one *contiguous* run of slots and lands
        every list with a single vectorized pack into the mapping — one
        numpy assignment instead of N ``struct.pack_into`` calls.  When no
        contiguous run is free (fragmentation) or any list exceeds the slot
        capacity, each list falls back to :meth:`write` individually; the
        fallback changes bytes moved, never outcomes.
        """
        lists = [list(defects) for defects in defect_lists]
        slots: list[int | None] = [None] * len(lists)
        occupied = [index for index, values in enumerate(lists) if values]
        count = len(occupied)
        if count == 0:
            return slots
        start = None
        if all(len(lists[index]) <= self.slot_capacity for index in occupied):
            with self._lock:
                start = self._take_run(count)
        if start is None:
            for index in occupied:
                slots[index] = self.write(lists[index])
            return slots
        padded = np.zeros((count, self.slot_capacity), dtype=np.int64)
        try:
            for row, index in enumerate(occupied):
                values = lists[index]
                padded[row, : len(values)] = values
        except (ValueError, TypeError, OverflowError):
            # Unpackable defects (non-integers) are the caller's problem;
            # the run must not leak with them.
            with self._lock:
                self._free.extend(range(start, start + count))
            raise
        view = np.frombuffer(
            self._shm.buf,
            dtype=np.int64,
            count=count * self.slot_capacity,
            offset=start * self.slot_capacity * 8,
        ).reshape(count, self.slot_capacity)
        view[:] = padded
        for row, index in enumerate(occupied):
            slots[index] = start + row
        return slots

    def free(self, slot: int) -> None:
        """Return a slot to the free list once its response arrived."""
        with self._lock:
            self._free.append(slot)

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def read(self, slot: int, count: int) -> tuple[int, ...]:
        """Read ``count`` defect indices back out of ``slot``."""
        if not 0 <= slot < self.slots or not 0 <= count <= self.slot_capacity:
            raise ValueError(f"slot {slot} / count {count} out of slab bounds")
        if count == 0:
            return ()
        return struct.unpack_from(f"<{count}q", self._shm.buf, slot * self.slot_capacity * 8)

    def close(self) -> None:
        """Unmap this process's view; the owner also unlinks the segment."""
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double close
                pass
