"""Synchronous, pipelined client of the network decode service.

:class:`NetClient` mirrors the in-process :class:`~repro.service.DecodeService`
surface — ``submit`` returning a future, ``decode``/``decode_many`` blocking
wrappers, ``open_stream`` — over one TCP connection speaking the protocol of
:mod:`repro.service.net.protocol`.  Requests are **pipelined**: ``submit``
writes the frame and returns immediately; a background reader thread matches
``response`` frames back to futures by frame id, so a closed-loop client with
``depth`` outstanding futures keeps ``depth`` requests in flight without any
extra threads.

The ``response`` frame on the wire is the full
:meth:`~repro.service.DecodeResponse.from_dict` form, request echo included.
The client swaps in its *local* :class:`~repro.service.DecodeRequest` object
so identity comparisons (``response.request is request``) behave exactly as
they do against an in-process service.
"""

from __future__ import annotations

import socket
import threading
from concurrent.futures import Future

from ..request import DecodeRequest, DecodeResponse, SessionKey
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    check_version,
    read_frame_sync,
    write_frame_sync,
)


class ServerDrainingError(ConnectionError):
    """The server announced a drain; it will not accept new work."""


class NetClient:
    """One TCP connection to a :class:`~repro.service.net.server.NetServer`.

    Usable as a context manager::

        with NetClient(host, port) as client:
            response = client.decode(request)
    """

    def __init__(self, host: str, port: int, *, timeout: float | None = 30.0) -> None:
        # ``timeout`` bounds connect + handshake only.  The steady-state
        # socket is unbounded: the reader thread must tolerate arbitrarily
        # long idle gaps (socket.timeout is an OSError, so a per-read
        # timeout would tear the connection down under an idle pipeline);
        # per-request deadlines belong to decode(timeout=...).
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(timeout)
        self._write_lock = threading.Lock()
        self._pending: dict[int, tuple[str, Future, DecodeRequest | None]] = {}
        self._pending_lock = threading.Lock()
        self._next_id = 0
        self._closed = False
        self._draining = False
        self._broken: Exception | None = None
        write_frame_sync(
            self._sock,
            {"kind": "hello", "version": PROTOCOL_VERSION, "client": "repro-net-client"},
        )
        welcome = read_frame_sync(self._sock)
        if welcome.get("kind") == "error":
            raise ProtocolError(welcome.get("error", "handshake refused"))
        if welcome.get("kind") != "welcome":
            raise ProtocolError(f"expected welcome, got {welcome.get('kind')!r}")
        check_version(welcome)
        #: Worker count and config hash the server reported at the handshake.
        self.server_workers: int = welcome.get("workers", 0)
        self.server_config_hash: str | None = welcome.get("config_hash")
        self._sock.settimeout(None)
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-net-client-reader", daemon=True
        )
        self._reader.start()

    # ------------------------------------------------------------------
    # reader thread
    # ------------------------------------------------------------------
    def _read_loop(self) -> None:
        try:
            while True:
                frame = read_frame_sync(self._sock)
                kind = frame.get("kind")
                if kind == "response":
                    self._resolve_response(frame)
                elif kind == "stream-reply":
                    self._resolve(frame.get("id"), frame.get("result"))
                elif kind == "error":
                    self._resolve_error(frame)
                elif kind == "drain":
                    self._draining = True
                # anything else (future protocol additions) is ignored
        except (ConnectionError, OSError) as exc:
            self._fail_all(exc if isinstance(exc, ConnectionError) else ConnectionError(str(exc)))

    def _take(self, frame_id) -> tuple[str, Future, DecodeRequest | None] | None:
        with self._pending_lock:
            return self._pending.pop(frame_id, None)

    def _resolve_response(self, frame: dict) -> None:
        entry = self._take(frame.get("id"))
        if entry is None:
            return
        _, future, request = entry
        try:
            response = DecodeResponse.from_dict(frame["response"])
            if request is not None:
                response = DecodeResponse(
                    request=request,
                    status=response.status,
                    outcome=response.outcome,
                    queue_delay_seconds=response.queue_delay_seconds,
                    latency_seconds=response.latency_seconds,
                    batch_size=response.batch_size,
                    cached=response.cached,
                    error=response.error,
                )
        except Exception as exc:  # undecodable response
            future.set_exception(ProtocolError(f"bad response frame: {exc}"))
            return
        future.set_result(response)

    def _resolve(self, frame_id, result) -> None:
        entry = self._take(frame_id)
        if entry is None:
            return
        _, future, _ = entry
        if isinstance(result, dict) and "error" in result and set(result) == {"error"}:
            future.set_exception(RuntimeError(result["error"]))
        else:
            future.set_result(result)

    def _resolve_error(self, frame: dict) -> None:
        frame_id = frame.get("id")
        message = frame.get("error", "server error")
        if frame_id is None:
            self._fail_all(ProtocolError(message))
            return
        entry = self._take(frame_id)
        if entry is None:
            return
        _, future, _ = entry
        if "draining" in message:
            future.set_exception(ServerDrainingError(message))
        else:
            future.set_exception(RuntimeError(message))

    def _fail_all(self, exc: Exception) -> None:
        with self._pending_lock:
            self._broken = exc
            pending = list(self._pending.values())
            self._pending.clear()
        for _, future, _ in pending:
            if not future.done():
                future.set_exception(exc)

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        """True once the server has announced a drain."""
        return self._draining

    def _send(self, kind: str, future_kind: str, request, extra: dict) -> Future:
        if self._closed:
            raise ConnectionError("client is closed")
        if self._broken is not None:
            # The connection already died: a registered future would never
            # resolve (the reader thread is gone), so fail fast instead.
            raise ConnectionError(f"connection lost: {self._broken}") from self._broken
        if self._draining:
            # The server announced a drain: already-pipelined work will still
            # be answered, but new work must go elsewhere.
            raise ServerDrainingError("server is draining")
        future: Future = Future()
        with self._pending_lock:
            self._next_id += 1
            frame_id = self._next_id
            self._pending[frame_id] = (future_kind, future, request)
        try:
            with self._write_lock:
                write_frame_sync(self._sock, {"kind": kind, "id": frame_id, **extra})
        except (ConnectionError, OSError) as exc:
            self._take(frame_id)
            raise ConnectionError(f"send failed: {exc}") from None
        return future

    def submit(self, request: DecodeRequest) -> Future:
        """Pipeline one decode request; returns a future of DecodeResponse."""
        return self._send("request", "request", request, {"request": request.to_dict()})

    def decode(self, request: DecodeRequest, timeout: float | None = None) -> DecodeResponse:
        """Synchronous convenience wrapper: :meth:`submit` + wait."""
        return self.submit(request).result(timeout)

    def decode_many(self, requests, timeout: float | None = None) -> list[DecodeResponse]:
        """Pipeline many requests, then wait for all (responses in input order)."""
        futures = [self.submit(request) for request in requests]
        return [future.result(timeout) for future in futures]

    # ------------------------------------------------------------------
    # streams
    # ------------------------------------------------------------------
    def open_stream(
        self,
        key: SessionKey,
        *,
        window: int | None = None,
        commit_depth: int | None = None,
        timeout: float | None = None,
    ) -> "NetStream":
        """Open a streaming decode session routed to ``key``'s worker."""
        with self._pending_lock:
            self._next_id += 1
            sid = self._next_id
        stream = NetStream(self, sid)
        self._send(
            "stream-open",
            "stream",
            None,
            {
                "stream": sid,
                "session": key.to_dict(),
                "window": window,
                "commit_depth": commit_depth,
            },
        ).result(timeout)
        return stream

    def _stream_op(self, sid: int, op: str, payload) -> Future:
        return self._send(
            "stream-op", "stream", None, {"stream": sid, "op": op, "payload": payload}
        )

    # ------------------------------------------------------------------
    # lifetime
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Say bye and tear the connection down; pending futures error out."""
        if self._closed:
            return
        self._closed = True
        try:
            with self._write_lock:
                write_frame_sync(self._sock, {"kind": "bye"})
        except (ConnectionError, OSError):
            pass
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        self._reader.join(1.0)
        self._fail_all(ConnectionError("client closed"))

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NetStream:
    """Client-side handle of one streaming session.

    The future-returning surface matches
    :class:`repro.service.service.ServiceStream`: ``begin`` resolves to
    ``None``, ``push_round`` to a cost-counter dict, ``finalize`` to the
    outcome's wire dict.
    """

    def __init__(self, client: NetClient, sid: int) -> None:
        self._client = client
        self._sid = sid

    def begin(self, rounds_hint: int | None = None) -> Future:
        return self._client._stream_op(self._sid, "begin", rounds_hint)

    def push_round(self, defects) -> Future:
        return self._client._stream_op(self._sid, "push", list(defects))

    def finalize(self) -> Future:
        return self._client._stream_op(self._sid, "finalize", None)

    def decode_rounds(self, rounds, timeout: float | None = None):
        """Blocking convenience: begin, push every round, finalize."""
        self.begin().result(timeout)
        for defects in rounds:
            self.push_round(defects).result(timeout)
        return self.finalize().result(timeout)
