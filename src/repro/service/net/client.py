"""Synchronous, pipelined client of the network decode service.

:class:`NetClient` mirrors the in-process :class:`~repro.service.DecodeService`
surface — ``submit`` returning a future, ``decode``/``decode_many`` blocking
wrappers, ``open_stream`` — over one TCP connection speaking the protocol of
:mod:`repro.service.net.protocol`.  Requests are **pipelined**: ``submit``
writes the frame and returns immediately; a background reader thread matches
``response`` frames back to futures by frame id, so a closed-loop client with
``depth`` outstanding futures keeps ``depth`` requests in flight without any
extra threads.

On top of pipelining the client batches at two levels (binary codec only):

* :meth:`decode_many` packs its requests into ``request-batch`` frames, one
  per predicted target worker (the consistent-hash ring is a pure function
  of the worker-id set, so the client can compute the server's routing),
  splitting a batch whose frame would exceed ``MAX_FRAME_BYTES``.
* :meth:`submit` runs a Nagle-style coalescer: a request is written
  immediately while the connection is otherwise idle, but once responses
  are outstanding further submissions buffer and flush as one
  ``request-batch`` when the buffer reaches ``coalesce.max_bytes`` or its
  oldest member has waited ``coalesce.max_delay_seconds`` (both advertised
  by the server's ``welcome`` frame).

The codec is negotiated at the handshake (``codecs=(1,)`` forces canonical
JSON — the legacy v1 wire format).  Binary ``response`` frames carry no
request echo; either way the client swaps in its *local*
:class:`~repro.service.DecodeRequest` object so identity comparisons
(``response.request is request``) behave exactly as they do against an
in-process service.  :meth:`wire_stats` reports the negotiated codec,
byte/frame counts in both directions, and the coalesced-batch-size
histogram.
"""

from __future__ import annotations

import socket
import threading
import time
from concurrent.futures import Future

from ...api.outcome import DecodeOutcome
from ..request import DecodeRequest, DecodeResponse, SessionKey
from . import protocol
from .protocol import (
    CODEC_BINARY,
    PROTOCOL_VERSION,
    SUPPORTED_CODECS,
    ProtocolError,
    check_version,
    decode_payload,
    read_frame_sync,
    read_payload_sync,
    write_frame_sync,
)
from .router import HashRing


class ServerDrainingError(ConnectionError):
    """The server announced a drain; it will not accept new work."""


def _estimate_member_bytes(member: dict) -> int:
    """Cheap size estimate of one batch member (binary codec, pre-encode).

    Used only to pre-chunk batches near the frame bound; the authoritative
    check is ``encode_frame`` raising :class:`ProtocolError`, which triggers
    a halving split.
    """
    syndrome = member["request"].get("syndrome") or {}
    defects = syndrome.get("defects") or ()
    edges = syndrome.get("error_edges") or ()
    return 64 + 4 * (len(defects) + len(edges))


class NetClient:
    """One TCP connection to a :class:`~repro.service.net.server.NetServer`.

    ``codecs`` is the preference list offered at the handshake;
    ``codecs=(1,)`` forces the JSON-v1 wire format (what a legacy client
    speaks).  Usable as a context manager::

        with NetClient(host, port) as client:
            response = client.decode(request)
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float | None = 30.0,
        codecs: tuple[int, ...] = SUPPORTED_CODECS,
    ) -> None:
        # ``timeout`` bounds connect + handshake only.  The steady-state
        # socket is unbounded: the reader thread must tolerate arbitrarily
        # long idle gaps (socket.timeout is an OSError, so a per-read
        # timeout would tear the connection down under an idle pipeline);
        # per-request deadlines belong to decode(timeout=...).
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(timeout)
        # The coalescer decides when bytes wait; Nagle's algorithm must not
        # add its own stalls underneath it.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._write_lock = threading.Lock()
        self._pending: dict[int, tuple[str, Future, DecodeRequest | None]] = {}
        self._pending_lock = threading.Lock()
        self._next_id = 0
        self._closed = False
        self._draining = False
        self._broken: Exception | None = None
        # wire statistics (guarded by _stats_lock; reader + writers touch it)
        self._stats_lock = threading.Lock()
        self._frames_sent = 0
        self._bytes_sent = 0
        self._frames_received = 0
        self._bytes_received = 0
        self._batch_histogram: dict[int, int] = {}
        write_frame_sync(
            self._sock,
            {
                "kind": "hello",
                "version": PROTOCOL_VERSION,
                "client": "repro-net-client",
                "codecs": list(codecs),
            },
        )
        welcome = read_frame_sync(self._sock)
        if welcome.get("kind") == "error":
            raise ProtocolError(welcome.get("error", "handshake refused"))
        if welcome.get("kind") != "welcome":
            raise ProtocolError(f"expected welcome, got {welcome.get('kind')!r}")
        check_version(welcome)
        #: Worker count and config hash the server reported at the handshake.
        self.server_workers: int = welcome.get("workers", 0)
        self.server_config_hash: str | None = welcome.get("config_hash")
        #: The payload codec both sides agreed on (1 = JSON, 2 = binary).
        #: A welcome without a ``codec`` key is a pre-v2 server: JSON.
        self.codec: int = welcome.get("codec", protocol.CODEC_JSON)
        self._batching = self.codec >= CODEC_BINARY
        coalesce = welcome.get("coalesce") or {}
        self._coalesce_max_bytes = max(1, int(coalesce.get("max_bytes", 65536)))
        self._coalesce_max_delay = max(
            0.0, float(coalesce.get("max_delay_seconds", 0.0005))
        )
        self._sock.settimeout(None)
        # Nagle-style coalescer state: buffered (member, estimate) pairs and
        # the monotonic time the oldest one arrived.
        self._co_cond = threading.Condition()
        self._co_buffer: list[dict] = []
        self._co_bytes = 0
        self._co_oldest = 0.0
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-net-client-reader", daemon=True
        )
        self._reader.start()
        self._flusher: threading.Thread | None = None
        if self._batching:
            self._flusher = threading.Thread(
                target=self._coalesce_loop, name="repro-net-client-coalescer", daemon=True
            )
            self._flusher.start()

    # ------------------------------------------------------------------
    # reader thread
    # ------------------------------------------------------------------
    def _read_loop(self) -> None:
        try:
            while True:
                payload = read_payload_sync(self._sock)
                with self._stats_lock:
                    self._frames_received += 1
                    self._bytes_received += len(payload) + 4
                frame = decode_payload(payload)
                kind = frame.get("kind")
                if kind == "response":
                    self._resolve_response(frame.get("id"), frame.get("response"))
                elif kind == "response-batch":
                    for member in frame.get("responses") or ():
                        if isinstance(member, dict):
                            self._resolve_response(member.get("id"), member.get("response"))
                elif kind == "stream-reply":
                    self._resolve(frame.get("id"), frame.get("result"))
                elif kind == "error":
                    self._resolve_error(frame)
                elif kind == "drain":
                    self._draining = True
                # anything else (future protocol additions) is ignored
        except ProtocolError as exc:
            self._fail_all(exc)
        except (ConnectionError, OSError) as exc:
            self._fail_all(exc if isinstance(exc, ConnectionError) else ConnectionError(str(exc)))

    def _take(self, frame_id) -> tuple[str, Future, DecodeRequest | None] | None:
        with self._pending_lock:
            return self._pending.pop(frame_id, None)

    def _resolve_response(self, frame_id, payload) -> None:
        entry = self._take(frame_id)
        if entry is None:
            return
        _, future, request = entry
        try:
            if not isinstance(payload, dict):
                raise TypeError("response payload is not an object")
            if request is None and payload.get("request") is not None:
                request = DecodeRequest.from_dict(payload["request"])
            outcome_wire = payload.get("outcome")
            # Built field by field rather than via ``from_dict`` because the
            # binary codec's response bodies carry no request echo — the
            # local request object stands in (and preserves identity:
            # ``response.request is request``).
            response = DecodeResponse(
                request=request,
                status=str(payload["status"]),
                outcome=None if outcome_wire is None else DecodeOutcome.from_dict(outcome_wire),
                queue_delay_seconds=float(payload.get("queue_delay_seconds", 0.0)),
                latency_seconds=float(payload.get("latency_seconds", 0.0)),
                batch_size=int(payload.get("batch_size", 0)),
                cached=bool(payload.get("cached", False)),
                error=payload.get("error"),
            )
        except Exception as exc:  # undecodable response
            future.set_exception(ProtocolError(f"bad response frame: {exc}"))
            return
        future.set_result(response)

    def _resolve(self, frame_id, result) -> None:
        entry = self._take(frame_id)
        if entry is None:
            return
        _, future, _ = entry
        if isinstance(result, dict) and "error" in result and set(result) == {"error"}:
            future.set_exception(RuntimeError(result["error"]))
        else:
            future.set_result(result)

    def _resolve_error(self, frame: dict) -> None:
        frame_id = frame.get("id")
        message = frame.get("error", "server error")
        if frame_id is None:
            self._fail_all(ProtocolError(message))
            return
        entry = self._take(frame_id)
        if entry is None:
            return
        _, future, _ = entry
        if "draining" in message:
            future.set_exception(ServerDrainingError(message))
        else:
            future.set_exception(RuntimeError(message))

    def _fail_all(self, exc: Exception) -> None:
        with self._pending_lock:
            self._broken = exc
            pending = list(self._pending.values())
            self._pending.clear()
        for _, future, _ in pending:
            if not future.done():
                future.set_exception(exc)
        # Unblock the coalescer thread; _check_sendable refuses new work.
        with self._co_cond:
            self._co_cond.notify_all()

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        """True once the server has announced a drain."""
        return self._draining

    def _check_sendable(self) -> None:
        if self._closed:
            raise ConnectionError("client is closed")
        if self._broken is not None:
            # The connection already died: a registered future would never
            # resolve (the reader thread is gone), so fail fast instead.
            raise ConnectionError(f"connection lost: {self._broken}") from self._broken
        if self._draining:
            # The server announced a drain: already-pipelined work will still
            # be answered, but new work must go elsewhere.
            raise ServerDrainingError("server is draining")

    def _register(self, future_kind: str, request) -> tuple[int, Future]:
        future: Future = Future()
        with self._pending_lock:
            self._next_id += 1
            frame_id = self._next_id
            self._pending[frame_id] = (future_kind, future, request)
        return frame_id, future

    def _send_frame(self, frame: dict, batch_size: int | None = None) -> None:
        """Encode + send one frame under the write lock, recording stats."""
        data = protocol.encode_frame(frame, self.codec)
        with self._write_lock:
            self._sock.sendall(data)
        with self._stats_lock:
            self._frames_sent += 1
            self._bytes_sent += len(data)
            if batch_size is not None:
                self._batch_histogram[batch_size] = (
                    self._batch_histogram.get(batch_size, 0) + 1
                )

    def _send(self, kind: str, future_kind: str, request, extra: dict) -> Future:
        self._check_sendable()
        frame_id, future = self._register(future_kind, request)
        try:
            self._send_frame({"kind": kind, "id": frame_id, **extra})
        except (ConnectionError, OSError) as exc:
            self._take(frame_id)
            raise ConnectionError(f"send failed: {exc}") from None
        return future

    def submit(self, request: DecodeRequest) -> Future:
        """Pipeline one decode request; returns a future of DecodeResponse.

        On a binary connection submissions coalesce Nagle-style: the request
        goes out immediately while nothing else is outstanding; under a
        pipeline it buffers and flushes as one ``request-batch`` at the
        server-advertised byte/delay bounds.
        """
        if not self._batching:
            return self._send("request", "request", request, {"request": request.to_dict()})
        self._check_sendable()
        frame_id, future = self._register("request", request)
        member = {"id": frame_id, "request": request.to_dict()}
        flush: list[dict] | None = None
        send_now = False
        with self._co_cond:
            if not self._co_buffer and len(self._pending) <= 1:
                # Idle connection: latency wins, write it straight out.
                send_now = True
            else:
                self._co_buffer.append(member)
                self._co_bytes += _estimate_member_bytes(member)
                if len(self._co_buffer) == 1:
                    self._co_oldest = time.monotonic()
                    self._co_cond.notify()
                if self._co_bytes >= self._coalesce_max_bytes:
                    flush = self._co_buffer
                    self._co_buffer = []
                    self._co_bytes = 0
        try:
            if send_now:
                self._send_frame(
                    {"kind": "request", "id": frame_id, "request": member["request"]},
                    batch_size=1,
                )
            elif flush is not None:
                self._send_batch(flush)
        except ProtocolError as exc:
            self._take(frame_id)
            raise ProtocolError(
                f"request does not fit one frame "
                f"(MAX_FRAME_BYTES={protocol.MAX_FRAME_BYTES}): {exc}"
            ) from None
        except (ConnectionError, OSError) as exc:
            self._take(frame_id)
            raise ConnectionError(f"send failed: {exc}") from None
        return future

    def _flush_coalescer(self) -> None:
        with self._co_cond:
            members, self._co_buffer, self._co_bytes = self._co_buffer, [], 0
        if members:
            self._send_batch(members)

    def _coalesce_loop(self) -> None:
        """Flusher thread: age out the coalescing buffer at max_delay."""
        while True:
            with self._co_cond:
                while not self._co_buffer and not self._closed and self._broken is None:
                    self._co_cond.wait()
                if self._closed or self._broken is not None:
                    return
                deadline = self._co_oldest + self._coalesce_max_delay
                remaining = deadline - time.monotonic()
                if remaining > 0:
                    self._co_cond.wait(remaining)
                    continue  # re-evaluate: an inline flush may have run
                members, self._co_buffer, self._co_bytes = self._co_buffer, [], 0
            try:
                self._send_batch(members)
            except (ConnectionError, OSError, ProtocolError):
                # The member futures were already failed by _send_batch (or
                # will be by the reader's _fail_all); keep the thread alive
                # so close() can join it.
                continue

    def _send_batch(self, members: list[dict]) -> None:
        """Send buffered members as ``request-batch`` frames, splitting to fit.

        Estimates pre-chunk near half the frame bound; an encode that still
        exceeds ``MAX_FRAME_BYTES`` splits by halving.  A *single* member
        that cannot fit a frame alone fails its own future with a clear
        error — one request, one answer, never a torn connection.
        """
        limit = max(1, protocol.MAX_FRAME_BYTES // 2)
        chunks: list[list[dict]] = []
        current: list[dict] = []
        current_bytes = 0
        for member in members:
            estimate = _estimate_member_bytes(member)
            if current and current_bytes + estimate > limit:
                chunks.append(current)
                current, current_bytes = [], 0
            current.append(member)
            current_bytes += estimate
        if current:
            chunks.append(current)
        while chunks:
            chunk = chunks.pop(0)
            if len(chunk) == 1:
                frame = {"kind": "request", "id": chunk[0]["id"], "request": chunk[0]["request"]}
            else:
                frame = {"kind": "request-batch", "requests": chunk}
            try:
                self._send_frame(frame, batch_size=len(chunk))
            except ProtocolError:
                if len(chunk) == 1:
                    entry = self._take(chunk[0]["id"])
                    if entry is not None:
                        syndrome = chunk[0]["request"].get("syndrome") or {}
                        defects = syndrome.get("defects") or ()
                        entry[1].set_exception(
                            ProtocolError(
                                f"request too large for one frame: a syndrome of "
                                f"{len(defects)} defects exceeds MAX_FRAME_BYTES "
                                f"({protocol.MAX_FRAME_BYTES}); decode it in smaller "
                                "pieces or raise MAX_FRAME_BYTES"
                            )
                        )
                    continue
                mid = len(chunk) // 2
                chunks.insert(0, chunk[mid:])
                chunks.insert(0, chunk[:mid])
            except (ConnectionError, OSError) as exc:
                failure = ConnectionError(f"send failed: {exc}")
                for member in chunk:
                    entry = self._take(member["id"])
                    if entry is not None and not entry[1].done():
                        entry[1].set_exception(failure)
                raise failure from None

    def decode(self, request: DecodeRequest, timeout: float | None = None) -> DecodeResponse:
        """Synchronous convenience wrapper: :meth:`submit` + wait."""
        return self.submit(request).result(timeout)

    def decode_many(self, requests, timeout: float | None = None) -> list[DecodeResponse]:
        """Pipeline many requests, then wait for all (responses in input order).

        On a binary connection the requests pack into ``request-batch``
        frames — one per predicted target worker, computed from the same
        consistent-hash ring the server routes with, so each frame forwards
        as a single unit down one worker pipe.
        """
        requests = list(requests)
        if not requests:
            return []
        if not self._batching:
            futures = [self.submit(request) for request in requests]
            return [future.result(timeout) for future in futures]
        self._check_sendable()
        # Anything sitting in the coalescer goes first — frame order on the
        # socket then matches submission order.
        self._flush_coalescer()
        # The ring is a pure function of the worker-id set; a worker that
        # died since the handshake merely makes this grouping non-optimal —
        # the server re-routes authoritatively.
        ring = HashRing(range(self.server_workers)) if self.server_workers else None
        # One wire dict and one key hash per distinct SessionKey *object*:
        # members sharing the dict lets every downstream dedupe (batch
        # encoder, server key-hash memo) key on object identity.
        wire_memo: dict[int, tuple[dict, int]] = {}
        futures: list[Future] = []
        groups: dict[int, list[dict]] = {}
        for request in requests:
            key = request.session
            memo = wire_memo.get(id(key))
            if memo is None:
                session_wire = key.to_dict()
                target = ring.route(key.key_hash()) if ring is not None else 0
                memo = (session_wire, target)
                wire_memo[id(key)] = memo
            session_wire, target = memo
            frame_id, future = self._register("request", request)
            futures.append(future)
            groups.setdefault(target, []).append(
                {
                    "id": frame_id,
                    "request": {
                        "session": session_wire,
                        "syndrome": request.syndrome.to_dict(),
                        "request_id": request.request_id,
                    },
                }
            )
        for members in groups.values():
            self._send_batch(members)
        return [future.result(timeout) for future in futures]

    # ------------------------------------------------------------------
    # wire statistics
    # ------------------------------------------------------------------
    def wire_stats(self) -> dict:
        """Counters of this connection's wire traffic.

        ``batch_histogram`` maps coalesced batch size (as a string, for JSON
        round-tripping) to how many request/request-batch frames of that
        size were sent; control and stream frames count in the totals only.
        """
        with self._stats_lock:
            return {
                "codec": self.codec,
                "frames_sent": self._frames_sent,
                "bytes_sent": self._bytes_sent,
                "frames_received": self._frames_received,
                "bytes_received": self._bytes_received,
                "batch_histogram": {
                    str(size): count
                    for size, count in sorted(self._batch_histogram.items())
                },
            }

    # ------------------------------------------------------------------
    # streams
    # ------------------------------------------------------------------
    def open_stream(
        self,
        key: SessionKey,
        *,
        window: int | None = None,
        commit_depth: int | None = None,
        timeout: float | None = None,
    ) -> "NetStream":
        """Open a streaming decode session routed to ``key``'s worker."""
        with self._pending_lock:
            self._next_id += 1
            sid = self._next_id
        stream = NetStream(self, sid)
        self._send(
            "stream-open",
            "stream",
            None,
            {
                "stream": sid,
                "session": key.to_dict(),
                "window": window,
                "commit_depth": commit_depth,
            },
        ).result(timeout)
        return stream

    def _stream_op(self, sid: int, op: str, payload) -> Future:
        return self._send(
            "stream-op", "stream", None, {"stream": sid, "op": op, "payload": payload}
        )

    # ------------------------------------------------------------------
    # lifetime
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Say bye and tear the connection down; pending futures error out."""
        if self._closed:
            return
        self._closed = True
        with self._co_cond:
            self._co_cond.notify_all()
        try:
            with self._write_lock:
                self._sock.sendall(protocol.encode_frame({"kind": "bye"}))
        except (ConnectionError, OSError):
            pass
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        self._reader.join(1.0)
        if self._flusher is not None:
            self._flusher.join(1.0)
        self._fail_all(ConnectionError("client closed"))

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NetStream:
    """Client-side handle of one streaming session.

    The future-returning surface matches
    :class:`repro.service.service.ServiceStream`: ``begin`` resolves to
    ``None``, ``push_round`` to a cost-counter dict, ``finalize`` to the
    outcome's wire dict.
    """

    def __init__(self, client: NetClient, sid: int) -> None:
        self._client = client
        self._sid = sid

    def begin(self, rounds_hint: int | None = None) -> Future:
        return self._client._stream_op(self._sid, "begin", rounds_hint)

    def push_round(self, defects) -> Future:
        return self._client._stream_op(self._sid, "push", list(defects))

    def finalize(self) -> Future:
        return self._client._stream_op(self._sid, "finalize", None)

    def decode_rounds(self, rounds, timeout: float | None = None):
        """Blocking convenience: begin, push every round, finalize."""
        self.begin().result(timeout)
        for defects in rounds:
            self.push_round(defects).result(timeout)
        return self.finalize().result(timeout)
