"""Network-path benchmarking: digest-identical replay and process scaling.

Two measurements live here:

* :func:`replay_network` replays a seed-stable
  :class:`~repro.service.TraceSpec` through a real
  :class:`~repro.service.net.server.NetServer` over loopback TCP and
  evaluates the responses through the *same*
  :func:`repro.evaluation.service_load.evaluate_outcomes` the in-process
  :class:`~repro.evaluation.ServiceLoadEngine` uses — so
  ``healthy_digest`` equality between the two paths compares identical
  record constructions.  The network layer is required to be a pure
  transport: any digest difference is a bug, not noise.
* :func:`scaling_bench` runs that replay at several worker-process counts
  and reports throughput, per-process scaling efficiency
  (``throughput[p] / (p × throughput[1])``), whether every count produced
  the same healthy digest, and the machine's CPU count — scaling numbers
  from a 1-core container are honest only with the core count attached.
* :func:`wire_comparison` replays the same trace twice against one server —
  once with the negotiated binary codec and batched ``decode_many`` frames,
  once with a client forced to the JSON-v1 per-request wire format — and
  reports both sides' throughput and wire statistics, the end-to-end
  speedup, and whether the two paths' healthy digests agree.  Both passes
  run against a warm worker-side outcome cache so the comparison measures
  the wire, not the decoders.
"""

from __future__ import annotations

import os
import time
from collections import Counter

from ...evaluation.engine import LatencyHistogram
from ...evaluation.service_load import ServiceLoadResult, evaluate_outcomes
from ..config import ServiceConfig
from ..trace import TraceSpec, generate_trace
from .client import NetClient
from .server import NetServer

#: Net-replay :class:`~repro.service.ServiceConfig` defaults — mirrors the
#: in-process engine's (`repro.evaluation.service_load._ENGINE_CONFIG_DEFAULTS`)
#: so the two paths are compared at identical service sizing.
NET_CONFIG_DEFAULTS = {"max_batch_size": 16, "max_wait_seconds": 0.001}

#: Worker-process counts the scaling series sweeps by default.
DEFAULT_PROCESS_COUNTS = (1, 2, 4)


def _net_config(config: ServiceConfig | None) -> ServiceConfig:
    if config is None:
        return ServiceConfig(**NET_CONFIG_DEFAULTS)
    if not isinstance(config, ServiceConfig):
        raise TypeError(f"config must be a ServiceConfig, got {type(config).__name__}")
    return config


def prewarm_specs(spec: TraceSpec):
    """The distinct :class:`~repro.service.CodeSpec`s of a trace's scenarios
    (what the server packs into shared memory before forking workers)."""
    seen: dict[str, object] = {}
    for scenario in spec.scenarios:
        code = scenario.code()
        seen.setdefault(code.key(), code)
    return tuple(seen.values())


def replay_network(
    spec: TraceSpec,
    *,
    processes: int = 2,
    config: ServiceConfig | None = None,
    repeats: int = 1,
    server: NetServer | None = None,
) -> ServiceLoadResult:
    """Replay ``spec`` through a network server; returns a load result.

    Requests are pipelined over one client connection in trace order, one
    full pass at a time (pass boundaries drain, exactly like the in-process
    engine, so repeats exercise worker-side outcome caches the same way).
    Pass ``server=`` to replay against an already-running server (its config
    then governs); otherwise a fresh server is started and stopped around
    the replay.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    config = _net_config(config if server is None else server.config)
    trace = generate_trace(spec, fault_plan=config.fault_plan)
    own_server = server is None
    if own_server:
        server = NetServer(config, processes=processes, prewarm=prewarm_specs(spec))
        host, port = server.start()
    else:
        host, port = server.host, server.port
    try:
        responses = []
        started = time.perf_counter()
        with NetClient(host, port) as client:
            for _ in range(repeats):
                responses.extend(
                    client.decode_many([traced.request for traced in trace.requests])
                )
            elapsed = time.perf_counter() - started
            wire = client.wire_stats()
    finally:
        if own_server:
            server.stop()
    sequence = list(trace.requests) * repeats
    queue_delay = LatencyHistogram()
    latency = LatencyHistogram()
    batch_sizes: Counter = Counter()
    for response in responses:
        queue_delay.add(response.queue_delay_seconds)
        latency.add(response.latency_seconds)
        if response.ok and not response.cached:
            batch_sizes[response.batch_size] += 1
    result = ServiceLoadResult(
        requests=len(sequence),
        completed=sum(1 for r in responses if r.ok),
        shed=sum(1 for r in responses if r.status == "shed"),
        errors=0,
        evaluated=0,
        elapsed_seconds=elapsed,
        queue_delay=queue_delay,
        latency=latency,
        batch_sizes=batch_sizes,
        error_responses=sum(1 for r in responses if r.status == "error"),
        cache_hits=sum(1 for r in responses if r.cached),
        wire=wire,
    )
    evaluate_outcomes(trace, sequence, responses, result)
    return result


def _wire_side(result: ServiceLoadResult) -> dict:
    stats = dict(result.wire or {})
    stats["throughput_rps"] = result.throughput_rps
    stats["healthy_digest"] = result.healthy_digest
    return stats


def wire_comparison(
    spec: TraceSpec,
    *,
    processes: int = 2,
    config: ServiceConfig | None = None,
    repeats: int = 2,
) -> dict:
    """Binary-batched (codec 2) vs per-request JSON (codec 1) wire replay.

    One server serves both passes.  The worker-side outcome cache is forced
    on and warmed with an untimed pass first, so the measured passes spend
    their time on the wire and the front end — the thing this comparison is
    about — instead of re-decoding; decode cost is identical on both sides
    either way.  Returns the schema-v5 ``wire.comparison`` block::

        {"processes", "requests",
         "v2": {codec, bytes/frames, throughput_rps, healthy_digest, ...},
         "v1": {...},
         "speedup": v2.throughput / v1.throughput,
         "digest_match": both passes produced one healthy digest}
    """
    config = _net_config(config)
    if not config.outcome_cache_bytes:
        config = config.replace(outcome_cache_bytes=8 << 20)
    trace = generate_trace(spec, fault_plan=config.fault_plan)
    requests = [traced.request for traced in trace.requests]
    server = NetServer(config, processes=processes, prewarm=prewarm_specs(spec))
    host, port = server.start()
    try:
        with NetClient(host, port) as warm:
            warm.decode_many(requests)
        sides: dict[str, ServiceLoadResult] = {}
        for label, codecs in (("v2", None), ("v1", (1,))):
            kwargs = {} if codecs is None else {"codecs": codecs}
            responses = []
            started = time.perf_counter()
            with NetClient(host, port, **kwargs) as client:
                for _ in range(repeats):
                    responses.extend(client.decode_many(requests))
                elapsed = time.perf_counter() - started
                wire = client.wire_stats()
            sequence = list(trace.requests) * repeats
            result = ServiceLoadResult(
                requests=len(sequence),
                completed=sum(1 for r in responses if r.ok),
                shed=sum(1 for r in responses if r.status == "shed"),
                errors=0,
                evaluated=0,
                elapsed_seconds=elapsed,
                queue_delay=LatencyHistogram(),
                latency=LatencyHistogram(),
                error_responses=sum(1 for r in responses if r.status == "error"),
                cache_hits=sum(1 for r in responses if r.cached),
                wire=wire,
            )
            evaluate_outcomes(trace, sequence, responses, result)
            sides[label] = result
    finally:
        server.stop()
    v1_rps = sides["v1"].throughput_rps
    return {
        "processes": processes,
        "requests": len(requests) * repeats,
        "v2": _wire_side(sides["v2"]),
        "v1": _wire_side(sides["v1"]),
        "speedup": sides["v2"].throughput_rps / v1_rps if v1_rps > 0 else 0.0,
        "digest_match": sides["v2"].healthy_digest == sides["v1"].healthy_digest,
    }


def scaling_entry(process_counts, results: dict[int, ServiceLoadResult]) -> dict:
    """The ``saturation.scaling`` block from per-process-count replays."""
    counts = list(process_counts)
    base = results[counts[0]].throughput_rps
    digests = {results[count].healthy_digest for count in counts}
    return {
        "cpu_count": os.cpu_count() or 1,
        "process_counts": counts,
        "series": [
            {
                "processes": count,
                "completed": results[count].completed,
                "throughput_rps": results[count].throughput_rps,
                "latency_p99_us": results[count].latency.percentile(99) * 1e6,
                "healthy_digest": results[count].healthy_digest,
                "efficiency": (
                    results[count].throughput_rps / (count / counts[0] * base)
                    if base > 0
                    else 0.0
                ),
            }
            for count in counts
        ],
        "digest_match": len(digests) == 1,
    }


def scaling_bench(
    spec: TraceSpec,
    *,
    process_counts=DEFAULT_PROCESS_COUNTS,
    config: ServiceConfig | None = None,
    repeats: int = 1,
) -> tuple[dict, dict[int, ServiceLoadResult]]:
    """Replay ``spec`` at each worker-process count; returns (entry, results).

    ``entry`` is the JSON-shaped ``saturation.scaling`` block
    (:func:`scaling_entry`); ``results`` maps process count to its full
    :class:`~repro.evaluation.ServiceLoadResult` for further gating (the CI
    smoke asserts every ``healthy_digest`` equals the in-process one).
    """
    counts = [int(count) for count in process_counts]
    if not counts or any(count < 1 for count in counts):
        raise ValueError("process_counts must be a non-empty list of ints >= 1")
    results: dict[int, ServiceLoadResult] = {}
    for count in counts:
        results[count] = replay_network(
            spec, processes=count, config=config, repeats=repeats
        )
    return scaling_entry(counts, results), results
