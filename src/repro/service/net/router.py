"""Consistent-hash routing of session keys to worker processes.

Each worker process hosts its own :class:`~repro.service.DecodeService` with
its own session LRU and outcome cache.  Routing a
:class:`~repro.service.SessionKey` by consistent hashing keeps those caches
hot: the same key always lands on the same worker (so its decoder session is
built once, not per request), and when a worker dies only the keys that lived
on *its* arc re-route — every other key keeps its warm cache.

The ring is a pure function of the worker-id set: points are derived with
:func:`repro.api.hashing.content_hash`, so every server replica routes a key
to the same worker — no coordination, no state to replicate.

>>> ring = HashRing([0, 1, 2, 3])
>>> ring.route("a1b2c3d4e5f60718") in (0, 1, 2, 3)
True
>>> before = ring.route("a1b2c3d4e5f60718")
>>> ring.remove(9 if before == 0 else 0)  # removing another worker's arc...
>>> ring.route("a1b2c3d4e5f60718") == before  # ...never moves this key
True
"""

from __future__ import annotations

from bisect import bisect_right

from ...api.hashing import content_hash

#: Virtual nodes per worker.  More vnodes → smoother key distribution and
#: smaller re-routed fraction on worker death, at O(workers × vnodes) ring
#: build cost (a few microseconds here).
DEFAULT_VNODES = 64


class HashRing:
    """A consistent-hash ring over integer worker ids.

    ``route(key_hash)`` maps a 16-hex-digit content hash (what
    :meth:`repro.service.SessionKey.key_hash` returns) to the worker owning
    the first ring point at or after the key's point, wrapping around.
    """

    def __init__(self, worker_ids, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self._vnodes = vnodes
        self._points: list[int] = []
        self._owners: list[int] = []
        self._workers: set[int] = set()
        for worker_id in worker_ids:
            self.add(worker_id)
        if not self._workers:
            raise ValueError("ring needs at least one worker")

    @property
    def worker_ids(self) -> frozenset[int]:
        """The live workers currently on the ring."""
        return frozenset(self._workers)

    def __len__(self) -> int:
        return len(self._workers)

    def _worker_points(self, worker_id: int) -> list[int]:
        return [
            int(content_hash(f"worker={worker_id}/vnode={v}"), 16) for v in range(self._vnodes)
        ]

    def add(self, worker_id: int) -> None:
        """Add a worker's virtual nodes to the ring (idempotent)."""
        if worker_id in self._workers:
            return
        self._workers.add(worker_id)
        merged = sorted(
            set(zip(self._points, self._owners, strict=True))
            | {(point, worker_id) for point in self._worker_points(worker_id)}
        )
        self._points = [point for point, _ in merged]
        self._owners = [owner for _, owner in merged]

    def remove(self, worker_id: int) -> None:
        """Remove a dead worker; its keys re-route to ring neighbours."""
        if worker_id not in self._workers:
            return
        self._workers.discard(worker_id)
        kept = [
            (point, owner)
            for point, owner in zip(self._points, self._owners, strict=True)
            if owner != worker_id
        ]
        self._points = [point for point, _ in kept]
        self._owners = [owner for _, owner in kept]

    def route(self, key_hash: str) -> int:
        """The worker id owning ``key_hash`` (a hex content-hash string).

        Raises :class:`LookupError` once every worker has been removed —
        callers turn that into isolated per-request errors, never a hang.
        """
        if not self._points:
            raise LookupError("no live workers on the ring")
        point = int(key_hash, 16)
        index = bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def assignment(self, key_hashes) -> dict[int, list[str]]:
        """Worker → keys mapping for a batch of key hashes (diagnostics)."""
        assigned: dict[int, list[str]] = {worker_id: [] for worker_id in self._workers}
        for key_hash in key_hashes:
            assigned[self.route(key_hash)].append(key_hash)
        return assigned
