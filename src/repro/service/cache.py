"""LRU cache of reusable decoder sessions.

Building a decoder is the expensive part of serving a request: the decoding
graph, the accelerator model, the primal module and the dual engine all have
to be constructed before the first syndrome can be decoded.  PR 1
established that *reusing* those engines across shots is bit-identical to
rebuilding them, which is exactly what a :class:`repro.api.DecoderSession`
does — so the service keeps one session per distinct
:class:`~repro.service.request.SessionKey` in a bounded LRU and routes every
micro-batch to its cached session.

Concurrency contract: the cache itself is guarded by one lock (lookups and
evictions are cheap); each entry carries its *own* lock that a worker holds
for the duration of a batch, serialising decodes on the underlying stateful
decoder.  An entry evicted while a batch is still running simply drops out
of the map — the in-flight batch keeps its reference and finishes normally;
the next request for that key builds a fresh session.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from ..api.session import DecoderSession
from .request import SessionKey

#: Builds the session of a key; injectable so tests can count/fake builds.
SessionFactory = Callable[[SessionKey], DecoderSession]


def build_session(key: SessionKey) -> DecoderSession:
    """The default session factory: build the key's graph and bind a decoder.

    >>> from repro.service import CodeSpec, SessionKey
    >>> session = build_session(SessionKey(CodeSpec(3), "union-find"))
    >>> session.name
    'union-find'
    """
    graph = key.code.build_graph()
    return DecoderSession(graph, key.decoder, key.config)


@dataclass
class SessionCacheStats:
    """Hit/miss/eviction counters of a :class:`SessionCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def to_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "evictions": self.evictions}


class SessionEntry:
    """One cached session plus the lock that serialises decodes on it."""

    __slots__ = ("key", "session", "lock")

    def __init__(self, key: SessionKey, session: DecoderSession) -> None:
        self.key = key
        self.session = session
        self.lock = threading.Lock()


class SessionCache:
    """Bounded LRU of :class:`repro.api.DecoderSession`, keyed by session key.

    ``max_sessions`` bounds live sessions; acquiring a key past the bound
    evicts the least-recently-used entry.  Thread-safe.

    >>> from repro.service import CodeSpec, SessionKey
    >>> cache = SessionCache(max_sessions=2)
    >>> entry = cache.acquire(SessionKey(CodeSpec(3), "union-find"))
    >>> _ = cache.acquire(SessionKey(CodeSpec(3), "union-find"))
    >>> (cache.stats.hits, cache.stats.misses)
    (1, 1)
    """

    def __init__(
        self,
        max_sessions: int = 8,
        session_factory: SessionFactory = build_session,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.max_sessions = max_sessions
        self._factory = session_factory
        self._entries: OrderedDict[SessionKey, SessionEntry] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = SessionCacheStats()

    def acquire(self, key: SessionKey) -> SessionEntry:
        """Return the entry of ``key``, building (and possibly evicting).

        The returned entry's ``lock`` must be held while decoding on its
        session.  Building the session happens *outside* the cache lock, so
        slow graph construction never blocks lookups of other keys; if two
        threads race to build the same key the first registration wins and
        the loser's session is discarded.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry
        session = self._factory(key)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:  # lost a build race; reuse the winner
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry
            self.stats.misses += 1
            entry = SessionEntry(key, session)
            self._entries[key] = entry
            while len(self._entries) > self.max_sessions:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            return entry

    def stats_snapshot(self) -> dict:
        """A consistent copy of the counters plus the live-entry count.

        Every counter mutation in :meth:`acquire` happens under the cache
        lock; taking the same lock here means a reader can never observe a
        torn combination (e.g. a hit counted but the entry not yet visible).
        :meth:`DecodeService.stats_snapshot` reads session statistics through
        this method only.
        """
        with self._lock:
            snapshot = self.stats.to_dict()
            snapshot["live"] = len(self._entries)
            return snapshot

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: SessionKey) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list[SessionKey]:
        """Cached keys, least-recently-used first."""
        with self._lock:
            return list(self._entries)
