"""Dynamic micro-batching core: coalesce requests, flush on size or deadline.

The batcher is the pLUTo-style amortisation point of the service (see
PAPERS.md): many small independent requests are coalesced into one batch per
session key so the per-batch costs — session lookup, lock acquisition,
worker dispatch — are paid once per batch instead of once per request, and
the cached session decodes the whole batch back to back.

A batch flushes when **either** bound is hit, whichever comes first:

* *size* — the batch reached ``max_batch_size`` requests (returned to the
  caller straight from :meth:`add`);
* *deadline* — ``max_wait_seconds`` elapsed since the batch's first request
  arrived (collected via :meth:`due`).  The deadline is set by the *first*
  request of a batch and never extended, so under light load no request ever
  waits more than ``max_wait_seconds`` in the batcher.

The class is deliberately **pure**: every method takes ``now`` explicitly and
nothing ever sleeps or spawns threads, so deadline semantics are unit-testable
with a fake clock (the :class:`~repro.service.service.DecodeService`
dispatcher drives it with the real one).

>>> batcher = MicroBatcher(max_batch_size=2, max_wait_seconds=0.5)
>>> batcher.add("k", "r1", now=10.0) is None       # opens the batch
True
>>> batcher.add("k", "r2", now=10.1).items         # size bound -> flushed
['r1', 'r2']
>>> batcher.add("k", "r3", now=10.2) is None
True
>>> batcher.next_deadline()
10.7
>>> [batch.items for batch in batcher.due(now=10.8)]
[['r3']]
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Batch:
    """One coalesced batch of requests sharing a session key."""

    key: object
    opened_seconds: float
    deadline_seconds: float
    items: list = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.items)


class MicroBatcher:
    """Clock-agnostic dynamic micro-batcher (flush on size or deadline)."""

    def __init__(self, max_batch_size: int = 32, max_wait_seconds: float = 0.002):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_seconds < 0:
            raise ValueError("max_wait_seconds must be non-negative")
        self.max_batch_size = max_batch_size
        self.max_wait_seconds = max_wait_seconds
        self._pending: dict[object, Batch] = {}

    def add(self, key, item, now: float) -> Batch | None:
        """Append ``item`` to the batch of ``key``; return it if now full.

        A returned batch has been removed from the batcher (the caller owns
        dispatching it); ``None`` means the item is waiting for either more
        requests or its deadline.
        """
        batch = self._pending.get(key)
        if batch is None:
            batch = Batch(
                key=key,
                opened_seconds=now,
                deadline_seconds=now + self.max_wait_seconds,
            )
            self._pending[key] = batch
        batch.items.append(item)
        if batch.size >= self.max_batch_size:
            del self._pending[key]
            return batch
        return None

    def next_deadline(self) -> float | None:
        """The earliest pending deadline, or ``None`` when nothing waits."""
        if not self._pending:
            return None
        return min(batch.deadline_seconds for batch in self._pending.values())

    def due(self, now: float) -> list[Batch]:
        """Remove and return every batch whose deadline has passed."""
        ready = [k for k, batch in self._pending.items() if batch.deadline_seconds <= now]
        flushed = [self._pending.pop(key) for key in ready]
        flushed.sort(key=lambda batch: batch.deadline_seconds)
        return flushed

    def drain(self) -> list[Batch]:
        """Remove and return every pending batch (service shutdown path)."""
        flushed = sorted(self._pending.values(), key=lambda batch: batch.deadline_seconds)
        self._pending.clear()
        return flushed

    @property
    def pending_requests(self) -> int:
        """Requests currently waiting in open batches."""
        return sum(batch.size for batch in self._pending.values())

    @property
    def pending_batches(self) -> int:
        """Open (not yet flushed) batches."""
        return len(self._pending)
