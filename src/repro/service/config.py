"""The consolidated configuration of a :class:`~repro.service.DecodeService`.

:class:`ServiceConfig` replaces the 10 sizing/policy keyword arguments that
used to be threaded one by one through ``DecodeService``, the load engine and
the CLI.  It is frozen (safe to share across threads and to fork into worker
processes), serialisable (``to_dict``/``from_dict``/``from_file`` — the
network server's config-file format), and content-addressed
(:meth:`ServiceConfig.config_hash` via :mod:`repro.api.hashing`), so two
services configured equally hash equally on every machine.

Runtime injection points — ``clock``, ``session_factory``, ``sleep`` — are
*not* configuration: they are non-serialisable callables and stay keyword
arguments of ``DecodeService`` itself.

>>> config = ServiceConfig(workers=4, overload_policy="shed")
>>> ServiceConfig.from_dict(config.to_dict()) == config
True
>>> config.config_hash() == config.replace().config_hash()
True
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path

from ..api.hashing import content_hash
from .faults import FaultPlan

#: Overload policies of the bounded admission queue.
OVERLOAD_POLICIES = ("block", "shed")


@dataclass(frozen=True)
class ServiceConfig:
    """Sizing and policy of one decode-service instance.

    The defaults reproduce ``DecodeService()``'s historical behaviour
    exactly; validation happens here (at construction) so a bad config fails
    before any thread or process is spawned.
    """

    #: Flush a session's batch at this many coalesced requests.
    max_batch_size: int = 32
    #: ... or once its oldest request waited this long, whichever first.
    max_wait_seconds: float = 0.002
    #: Bound of the admission queue (backpressure domain).
    queue_capacity: int = 1024
    #: Decoder worker threads of this service instance.
    workers: int = 2
    #: Capacity of the LRU of reusable decoder sessions.
    max_sessions: int = 8
    #: ``"block"`` (wait at a full queue) or ``"shed"`` (answer STATUS_SHED).
    overload_policy: str = "block"
    #: Budget of the content-addressed outcome cache; ``None``/0 disables it.
    outcome_cache_bytes: int | None = None
    #: Deterministic fault injection; ``None`` (or an inactive plan) is free.
    fault_plan: FaultPlan | None = None
    #: Session-build crash retries before a batch fails with STATUS_ERROR.
    session_build_retries: int = 0
    #: Linear backoff between session-build retries (seconds × attempt).
    session_build_backoff_seconds: float = 0.0
    #: Highest wire codec the network tier negotiates (``2`` = binary with
    #: per-frame JSON fallback, ``1`` = canonical JSON only).
    wire_codec: int = 2
    #: Client-side request coalescer: flush a pending batch at this many
    #: buffered frame bytes...
    coalesce_max_bytes: int = 65536
    #: ... or once its oldest request waited this long, whichever first.
    #: The server advertises both knobs in its ``welcome`` frame.
    coalesce_max_delay_seconds: float = 0.0005

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_seconds < 0:
            raise ValueError("max_wait_seconds must be non-negative")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.overload_policy not in OVERLOAD_POLICIES:
            raise ValueError(
                f"overload_policy must be one of {OVERLOAD_POLICIES}, "
                f"got {self.overload_policy!r}"
            )
        if self.session_build_retries < 0:
            raise ValueError("session_build_retries must be >= 0")
        if self.session_build_backoff_seconds < 0:
            raise ValueError("session_build_backoff_seconds must be non-negative")
        if self.wire_codec not in (1, 2):
            raise ValueError("wire_codec must be 1 (JSON) or 2 (binary)")
        if self.coalesce_max_bytes < 1:
            raise ValueError("coalesce_max_bytes must be >= 1")
        if self.coalesce_max_delay_seconds < 0:
            raise ValueError("coalesce_max_delay_seconds must be non-negative")

    def replace(self, **changes) -> "ServiceConfig":
        """Return a copy with the given fields replaced (re-validated)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # serialisation (network server config file, bench artifact embedding)
    # ------------------------------------------------------------------
    def config_hash(self) -> str:
        """Stable 16-hex-digit content hash of this configuration.

        Stable across processes (unlike ``hash(config)``); the network
        server's handshake echoes it so clients can confirm what they are
        talking to.

        >>> ServiceConfig().config_hash() == ServiceConfig().config_hash()
        True
        >>> ServiceConfig(workers=4).config_hash() != ServiceConfig().config_hash()
        True
        """
        return content_hash({"service_config": self.to_dict()})

    def to_dict(self) -> dict:
        """JSON-shaped form; the nested fault plan serialises recursively."""
        data = {}
        for spec in dataclasses.fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, FaultPlan):
                value = value.to_dict()
            data[spec.name] = value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceConfig":
        """Inverse of :meth:`to_dict`; unknown keys fail loudly.

        >>> ServiceConfig.from_dict({"workers": 3}).workers
        3
        """
        known = {spec.name for spec in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown ServiceConfig fields: {sorted(unknown)}")
        kwargs = dict(data)
        plan = kwargs.get("fault_plan")
        if plan is not None:
            kwargs["fault_plan"] = FaultPlan.from_dict(plan)
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: str | Path) -> "ServiceConfig":
        """Load a config from a JSON file (the ``serve-net --config`` input)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
