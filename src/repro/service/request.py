"""Request/response dataclasses of the decode service.

A service request names *what* to decode (a syndrome) and *with what* (a
:class:`SessionKey`: code parameters, decoder name, decoder configuration).
The key is everything the service needs to build — or fetch from its LRU —
the reusable :class:`repro.api.DecoderSession` that serves the request, and
its canonical string form doubles as the micro-batcher's coalescing key:
requests with equal keys are decodable by one session and therefore
batchable together.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.config import DecoderConfig
from ..api.hashing import content_hash
from ..api.outcome import DecodeOutcome
from ..api.registry import decoder_spec
from ..graphs.decoding_graph import DecodingGraph
from ..graphs.noise import noise_model_by_name
from ..graphs.surface_code import surface_code_decoding_graph
from ..graphs.syndrome import Syndrome

#: Response status: the request was decoded.
STATUS_OK = "ok"
#: Response status: the request was load-shed (bounded queue full under the
#: ``"shed"`` overload policy) and never reached a decoder.
STATUS_SHED = "shed"
#: Response status: the request failed inside the service — its decode
#: raised (e.g. a poisoned/malformed syndrome) or its session build kept
#: crashing past the retry budget.  The failure is isolated: every other
#: request in the same micro-batch completes normally.
STATUS_ERROR = "error"


@dataclass(frozen=True)
class CodeSpec:
    """The code-and-noise half of a session key.

    Identifies one decoding graph: a rotated surface-code memory experiment
    of odd ``distance``, under the named noise family at one physical error
    rate, with an optional explicit number of measurement ``rounds``
    (defaults to the code distance for 3D noise models).

    >>> code = CodeSpec(distance=3, noise="circuit_level", physical_error_rate=0.02)
    >>> code.key()
    'd=3/noise=circuit_level/p=0.02/rounds=default'
    >>> code.build_graph().metadata["distance"]
    3
    """

    distance: int
    noise: str = "circuit_level"
    physical_error_rate: float = 0.001
    rounds: int | None = None

    def __post_init__(self) -> None:
        if self.distance < 3 or self.distance % 2 == 0:
            raise ValueError("distance must be odd and >= 3")
        if not 0.0 < self.physical_error_rate < 1.0:
            raise ValueError("physical_error_rate must lie in (0, 1)")
        if self.rounds is not None and self.rounds < 1:
            raise ValueError("rounds must be >= 1 (or None for the default)")

    def key(self) -> str:
        """Canonical parameter string (stable across processes)."""
        rounds = "default" if self.rounds is None else str(self.rounds)
        return (
            f"d={self.distance}/noise={self.noise}"
            f"/p={float(self.physical_error_rate)!r}/rounds={rounds}"
        )

    def build_graph(self) -> DecodingGraph:
        """Construct the decoding graph this spec describes."""
        model = noise_model_by_name(self.noise, self.physical_error_rate)
        return surface_code_decoding_graph(self.distance, model, rounds=self.rounds)

    def to_dict(self) -> dict:
        """JSON-shaped wire form (the network service's session codec).

        >>> CodeSpec(3).to_dict()["distance"]
        3
        """
        return {
            "distance": self.distance,
            "noise": self.noise,
            "physical_error_rate": self.physical_error_rate,
            "rounds": self.rounds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CodeSpec":
        """Inverse of :meth:`to_dict`.

        >>> CodeSpec.from_dict(CodeSpec(5, rounds=2).to_dict())
        CodeSpec(distance=5, noise='circuit_level', physical_error_rate=0.001, rounds=2)
        """
        rounds = data.get("rounds")
        return cls(
            distance=int(data["distance"]),
            noise=str(data.get("noise", "circuit_level")),
            physical_error_rate=float(data.get("physical_error_rate", 0.001)),
            rounds=None if rounds is None else int(rounds),
        )


@dataclass(frozen=True)
class SessionKey:
    """What the service's session LRU is keyed by.

    ``(code, decoder, config)`` fully determines a
    :class:`repro.api.DecoderSession`; two requests with equal keys can share
    one cached session (and hence one micro-batch).  A ``config`` of ``None``
    is normalised to the decoder's registry default at construction, so
    explicit-default and omitted configs produce the *same* key.

    >>> key = SessionKey(CodeSpec(3, physical_error_rate=0.02), "union-find")
    >>> key == SessionKey(CodeSpec(3, physical_error_rate=0.02), "union-find")
    True
    >>> key.key().startswith("d=3/noise=circuit_level")
    True
    """

    code: CodeSpec
    decoder: str = "micro-blossom"
    config: DecoderConfig | None = None

    def __post_init__(self) -> None:
        spec = decoder_spec(self.decoder)  # fail fast on unknown names
        config = self.config
        if config is None:
            config = spec.make_config()
        elif not isinstance(config, spec.config_cls):
            raise TypeError(
                f"decoder {self.decoder!r} expects a {spec.config_cls.__name__}, "
                f"got {type(config).__name__}"
            )
        object.__setattr__(self, "config", config)

    @property
    def config_hash(self) -> str:
        """Stable content hash of the (normalised) decoder configuration."""
        return self.config.config_hash()

    def key(self) -> str:
        """Canonical ``(code, noise, decoder, config-hash)`` string."""
        return f"{self.code.key()}/decoder={self.decoder}/config={self.config_hash}"

    def key_hash(self) -> str:
        """16-hex-digit content hash of :meth:`key` (fits in filenames/logs)."""
        return content_hash({"session": self.key()})

    def to_dict(self) -> dict:
        """JSON-shaped wire form.  ``config`` is always the normalised
        (non-``None``) configuration, so the wire form round-trips to an
        *equal* key even when the sender omitted the config.

        >>> key = SessionKey(CodeSpec(3), "union-find")
        >>> SessionKey.from_dict(key.to_dict()) == key
        True
        """
        return {
            "code": self.code.to_dict(),
            "decoder": self.decoder,
            "config": self.config.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SessionKey":
        """Inverse of :meth:`to_dict` (``config: null`` means registry default)."""
        config = data.get("config")
        return cls(
            code=CodeSpec.from_dict(data["code"]),
            decoder=str(data.get("decoder", "micro-blossom")),
            config=None if config is None else DecoderConfig.from_dict(config),
        )


@dataclass(frozen=True)
class DecodeRequest:
    """One single-shot decode request submitted to the service.

    ``request_id`` is a client-chosen correlator echoed back on the response;
    the service never interprets it.
    """

    session: SessionKey
    syndrome: Syndrome
    request_id: int = 0

    def to_dict(self) -> dict:
        """JSON-shaped wire form — exactly what one ``request`` TCP frame
        carries (see :mod:`repro.service.net.protocol`).

        >>> request = DecodeRequest(SessionKey(CodeSpec(3), "union-find"), Syndrome((1,)))
        >>> DecodeRequest.from_dict(request.to_dict()) == request
        True
        """
        return {
            "session": self.session.to_dict(),
            "syndrome": self.syndrome.to_dict(),
            "request_id": self.request_id,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DecodeRequest":
        """Inverse of :meth:`to_dict`."""
        return cls(
            session=SessionKey.from_dict(data["session"]),
            syndrome=Syndrome.from_dict(data["syndrome"]),
            request_id=int(data.get("request_id", 0)),
        )


@dataclass
class DecodeResponse:
    """The service's answer to one :class:`DecodeRequest`.

    ``outcome`` is bit-identical to calling ``decode_detailed`` on a decoder
    built directly from the request's session key — batching and session
    reuse never change results (pinned by ``tests/test_service.py``).  The
    timing fields use the service clock: ``queue_delay_seconds`` is the time
    from submission until the request's micro-batch started decoding,
    ``latency_seconds`` the full submission-to-completion time, and
    ``batch_size`` how many requests shared the coalesced batch.

    ``cached`` marks a response resolved by the service's content-addressed
    :class:`repro.lut.OutcomeCache` — the outcome is a stored (and cloned)
    earlier decode of the same session key and defect set, which is exact
    because decoding is deterministic.  Cached responses never occupy a
    micro-batch slot, so their ``batch_size`` is 0.

    ``error`` carries the failure summary of a :data:`STATUS_ERROR`
    response (``"<ExceptionType>: <message>"``); ``None`` otherwise.
    """

    request: DecodeRequest
    status: str = STATUS_OK
    outcome: DecodeOutcome | None = None
    queue_delay_seconds: float = 0.0
    latency_seconds: float = 0.0
    batch_size: int = 0
    cached: bool = False
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True when the request was decoded (not shed or failed)."""
        return self.status == STATUS_OK

    def to_dict(self) -> dict:
        """JSON-shaped wire form — the payload of one ``response`` TCP frame.

        The outcome flattens to a plain :class:`~repro.api.DecodeOutcome`
        (see :meth:`repro.api.DecodeOutcome.to_dict`), which preserves every
        field the digest/identity contracts compare.

        >>> request = DecodeRequest(SessionKey(CodeSpec(3), "union-find"), Syndrome(()))
        >>> response = DecodeResponse(request, status=STATUS_SHED)
        >>> DecodeResponse.from_dict(response.to_dict()) == response
        True
        """
        return {
            "request": self.request.to_dict(),
            "status": self.status,
            "outcome": None if self.outcome is None else self.outcome.to_dict(),
            "queue_delay_seconds": self.queue_delay_seconds,
            "latency_seconds": self.latency_seconds,
            "batch_size": self.batch_size,
            "cached": self.cached,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DecodeResponse":
        """Inverse of :meth:`to_dict`."""
        outcome = data.get("outcome")
        return cls(
            request=DecodeRequest.from_dict(data["request"]),
            status=str(data.get("status", STATUS_OK)),
            outcome=None if outcome is None else DecodeOutcome.from_dict(outcome),
            queue_delay_seconds=float(data.get("queue_delay_seconds", 0.0)),
            latency_seconds=float(data.get("latency_seconds", 0.0)),
            batch_size=int(data.get("batch_size", 0)),
            cached=bool(data.get("cached", False)),
            error=data.get("error"),
        )
