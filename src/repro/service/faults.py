"""Deterministic fault injection for the decode service.

The service's isolation claims — a poisoned request cannot take its batch
down, a crashing session build cannot take the dispatcher down, a straggling
worker cannot corrupt outcomes — are only claims until something injects
those faults on purpose.  This module makes the injection *declarative and
seed-stable*: a :class:`FaultPlan` names the faults, and every selection
(which request is poisoned, which session key's build crashes) is a pure
function of ``(plan.seed, stable identifier)`` through
:func:`repro.api.hashing.stable_seed` — the same machinery trace expansion
uses — so a replayed hostile benchmark injects *bit-identical* faults on
every machine.

Three fault families are modelled after what production traffic actually
does to a service:

* **Worker stragglers** — the first ``straggler_workers`` threads of the
  service pool sleep ``straggler_delay_seconds`` before decoding each batch.
  Timing-only: outcomes must stay bit-identical, latency tails move.
* **Session-build crashes** — building the session of a selected key raises
  :class:`InjectedFault` for its first ``session_crash_attempts`` attempts.
  The service retries with bounded backoff
  (``DecodeService(session_build_retries=...)``); a transient crash is
  invisible in outcomes, an exhausted retry budget resolves the batch with
  :data:`~repro.service.request.STATUS_ERROR` responses.
* **Poisoned requests** — selected trace requests carry a malformed
  syndrome (a defect index no decoding graph has).  The decoder raises, the
  service answers *that* future with ``STATUS_ERROR``, and every other
  request in the same micro-batch completes bit-identically — the isolation
  property ``repro serve-bench --hostile-smoke`` gates in CI.

>>> plan = FaultPlan(seed=7, poison_rate=0.25)
>>> plan.poisons(3) == FaultPlan.from_dict(plan.to_dict()).poisons(3)
True
>>> FaultPlan(seed=7).is_active()
False
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass
from pathlib import Path

from ..api.hashing import content_hash, stable_seed
from ..graphs.syndrome import Syndrome


class InjectedFault(RuntimeError):
    """Raised by fault-injection hooks (never by real service code paths)."""


def _stable_fraction(seed: int, key: str) -> float:
    """A deterministic uniform draw in [0, 1) from ``(seed, key)``."""
    return stable_seed(seed, key) / float(2**63)


@dataclass(frozen=True)
class FaultPlan:
    """Declarative, seed-stable description of the faults to inject.

    All selections derive from ``seed`` alone, so two replays of the same
    plan against the same trace inject identical faults.  A default-valued
    plan injects nothing (:meth:`is_active` is False) — services constructed
    without a plan pay zero overhead.
    """

    name: str = "faults"
    seed: int = 0
    #: The first N worker threads of the service pool are stragglers.
    straggler_workers: int = 0
    #: Sleep inserted by a straggler before decoding each batch (seconds).
    straggler_delay_seconds: float = 0.0
    #: Probability (per distinct session key) that its builds crash.
    session_crash_rate: float = 0.0
    #: How many consecutive build attempts of a selected key crash before
    #: the build succeeds — keep it <= the service's retry budget to model
    #: transient faults, above it to model a hard-down session.
    session_crash_attempts: int = 1
    #: Probability (per trace request index) that the request is poisoned.
    poison_rate: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("fault plan needs a non-empty name")
        if self.straggler_workers < 0:
            raise ValueError("straggler_workers must be >= 0")
        if self.straggler_delay_seconds < 0:
            raise ValueError("straggler_delay_seconds must be non-negative")
        if not 0.0 <= self.session_crash_rate <= 1.0:
            raise ValueError("session_crash_rate must lie in [0, 1]")
        if self.session_crash_attempts < 1:
            raise ValueError("session_crash_attempts must be >= 1")
        if not 0.0 <= self.poison_rate <= 1.0:
            raise ValueError("poison_rate must lie in [0, 1]")

    # ------------------------------------------------------------------
    # deterministic selection predicates
    # ------------------------------------------------------------------
    def is_active(self) -> bool:
        """Whether the plan injects anything at all."""
        return (
            (self.straggler_workers > 0 and self.straggler_delay_seconds > 0)
            or self.session_crash_rate > 0
            or self.poison_rate > 0
        )

    def poisons(self, request_index: int) -> bool:
        """Whether trace request ``request_index`` carries a poisoned syndrome."""
        if self.poison_rate <= 0:
            return False
        return _stable_fraction(self.seed, f"poison:req={request_index}") < self.poison_rate

    def crashes_build(self, key_hash: str, attempt: int) -> bool:
        """Whether build ``attempt`` (0-based) of session ``key_hash`` crashes."""
        if self.session_crash_rate <= 0 or attempt >= self.session_crash_attempts:
            return False
        return _stable_fraction(self.seed, f"session-crash:{key_hash}") < self.session_crash_rate

    def straggles(self, worker_index: int) -> bool:
        """Whether worker thread ``worker_index`` is a straggler."""
        return worker_index < self.straggler_workers and self.straggler_delay_seconds > 0

    # ------------------------------------------------------------------
    # serialisation (CLI --fault-plan input, BENCH_service.json embedding)
    # ------------------------------------------------------------------
    def plan_hash(self) -> str:
        """16-hex-digit content hash of the fault-determining fields."""
        payload = self.to_dict()
        payload.pop("name")  # renaming a plan keeps its identity
        return content_hash(payload)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            name=str(data.get("name", "faults")),
            seed=int(data.get("seed", 0)),
            straggler_workers=int(data.get("straggler_workers", 0)),
            straggler_delay_seconds=float(data.get("straggler_delay_seconds", 0.0)),
            session_crash_rate=float(data.get("session_crash_rate", 0.0)),
            session_crash_attempts=int(data.get("session_crash_attempts", 1)),
            poison_rate=float(data.get("poison_rate", 0.0)),
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "FaultPlan":
        """Load a fault plan from a JSON file (the CLI's ``--fault-plan``)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def poisoned_syndrome(num_vertices: int, request_index: int) -> Syndrome:
    """A malformed syndrome: one defect index no graph of this size has.

    Decoders index their vertex tables with it and raise; the service must
    convert that failure into a ``STATUS_ERROR`` response for *this* request
    only.  The index encodes the request index so two poisoned requests never
    alias in the outcome cache.
    """
    return Syndrome(defects=(num_vertices + 1 + request_index,))


class FaultInjector:
    """Runtime hooks of one :class:`FaultPlan` inside a service instance.

    Tracks per-key build attempts (so ``session_crash_attempts`` counts
    *consecutive* crashes of one key) and totals of every injected fault;
    :meth:`stats_snapshot` is folded into
    :meth:`repro.service.DecodeService.stats_snapshot`.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._build_attempts: dict[str, int] = {}
        self.injected_crashes = 0
        self.injected_delays = 0

    # ------------------------------------------------------------------
    # session-build crashes
    # ------------------------------------------------------------------
    def wrap_factory(self, factory):
        """Wrap a session factory so selected keys' first builds crash."""
        if self.plan.session_crash_rate <= 0:
            return factory

        def faulty_factory(key):
            key_hash = key.key_hash()
            with self._lock:
                attempt = self._build_attempts.get(key_hash, 0)
                self._build_attempts[key_hash] = attempt + 1
            if self.plan.crashes_build(key_hash, attempt):
                with self._lock:
                    self.injected_crashes += 1
                raise InjectedFault(
                    f"injected session-build crash (key={key_hash}, attempt={attempt})"
                )
            return factory(key)

        return faulty_factory

    # ------------------------------------------------------------------
    # worker stragglers
    # ------------------------------------------------------------------
    def worker_delay(self) -> float:
        """Straggler delay owed by the *current* worker thread (0.0 if none).

        Worker identity is the pool thread's index, parsed from the
        ``repro-service_<n>`` name :class:`~concurrent.futures.ThreadPoolExecutor`
        assigns — stable for the lifetime of the pool.
        """
        name = threading.current_thread().name
        _, _, suffix = name.rpartition("_")
        if not suffix.isdigit():
            return 0.0
        if not self.plan.straggles(int(suffix)):
            return 0.0
        with self._lock:
            self.injected_delays += 1
        return self.plan.straggler_delay_seconds

    def stats_snapshot(self) -> dict:
        with self._lock:
            return {
                "plan": self.plan.name,
                "plan_hash": self.plan.plan_hash(),
                "injected_crashes": self.injected_crashes,
                "injected_delays": self.injected_delays,
            }


#: Pinned fault plan of the CI hostile smoke (``repro serve-bench
#: --hostile-smoke``): one straggling worker, transient session-build
#: crashes (covered by the smoke's retry budget of 2), and ~2% poisoned
#: requests.  Selections are pure functions of the seed, so the injected
#: faults — and therefore the healthy-request digests the gate compares —
#: are identical on every machine.
HOSTILE_SMOKE_PLAN = FaultPlan(
    name="hostile-smoke",
    seed=2026,
    straggler_workers=1,
    straggler_delay_seconds=0.002,
    session_crash_rate=0.4,
    session_crash_attempts=1,
    poison_rate=0.02,
)
