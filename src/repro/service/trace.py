"""Seed-stable synthetic request traces for service load evaluation.

A :class:`TraceSpec` describes a service workload declaratively: a mix of
*scenarios* (code distance, noise family, physical error rate, decoder —
weighted), how many requests to issue, and the arrival process — **open
loop** (requests arrive on a schedule, optionally Poisson at ``rate_rps``,
regardless of completions — models independent outside users) or **closed
loop** (``clients`` concurrent callers, each issuing its next request only
after the previous one completes — models a fixed worker fleet).

Trace expansion is *seed-stable* in the same sense as sweep expansion
(:mod:`repro.sweeps.spec`): request ``i``'s scenario assignment, syndrome and
(open-loop) arrival offset are a pure function of ``(seed, scenarios,
requests, arrival process)``, derived through
:func:`repro.api.hashing.stable_seed` — never of wall-clock time, worker
count, or completion order.  Replaying a trace therefore decodes identical
syndromes in an identical submission order on every machine, which is what
makes service benchmarks comparable across commits
(``BENCH_service.json``) and lets tests pin worker-count independence.

Beyond the well-behaved mixes, the spec describes **hostile traffic
families** (see :func:`hostile_trace`) through the same machinery:

* *flash crowds* — ``burst_size``/``burst_gap_seconds`` make open-loop
  arrivals land in synchronized bursts instead of a smooth schedule;
* *heavy tails* — ``interarrival="pareto"`` draws Pareto (infinite-variance)
  inter-arrival gaps at the same mean rate, so load arrives in clumps;
* *session-key skew* — :func:`zipf_scenarios` expands one scenario into many
  distinct session keys under a Zipf popularity law, sized to defeat the
  service's session LRU;
* *slow consumers* — ``slow_streams``/``stream_push_gap_seconds`` add
  long-lived streaming connections that push rounds with think time between
  them, occupying the shared scheduler while single-shot traffic competes.

All four stay bit-identical under replay: burst shapes are arithmetic,
Pareto gaps and stream shots come from ``stable_seed``-derived RNG streams.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from ..api.hashing import content_hash, stable_seed
from ..graphs.decoding_graph import DecodingGraph
from ..graphs.syndrome import SyndromeSampler
from .faults import FaultPlan, poisoned_syndrome
from .request import CodeSpec, DecodeRequest, SessionKey

#: Supported arrival processes.
ARRIVAL_PROCESSES = ("open", "closed")

#: Supported open-loop inter-arrival distributions (with ``rate_rps`` set).
INTERARRIVALS = ("exponential", "pareto")

#: The hostile traffic families :func:`hostile_trace` can build.
HOSTILE_FAMILIES = ("flash-crowd", "pareto", "zipf", "slow-consumer")


@dataclass(frozen=True)
class Scenario:
    """One weighted cell of a trace's workload mix.

    >>> Scenario(distance=3, physical_error_rate=0.02).session_key().decoder
    'micro-blossom'
    """

    distance: int
    noise: str = "circuit_level"
    physical_error_rate: float = 0.001
    decoder: str = "micro-blossom"
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("scenario weight must be positive")

    def code(self) -> CodeSpec:
        return CodeSpec(
            distance=self.distance,
            noise=self.noise,
            physical_error_rate=self.physical_error_rate,
        )

    def session_key(self) -> SessionKey:
        """The service session key every request of this scenario targets."""
        return SessionKey(self.code(), self.decoder)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        return cls(
            distance=int(data["distance"]),
            noise=str(data.get("noise", "circuit_level")),
            physical_error_rate=float(data.get("physical_error_rate", 0.001)),
            decoder=str(data.get("decoder", "micro-blossom")),
            weight=float(data.get("weight", 1.0)),
        )


@dataclass(frozen=True)
class TraceSpec:
    """Declarative description of one synthetic service workload.

    ``rate_rps=None`` in an open-loop trace means *back-to-back* submission
    (arrival offsets all zero — the service is driven as fast as the client
    can submit, the throughput-measurement mode); a finite rate draws
    exponential (Poisson-process) inter-arrival gaps from the trace seed.

    >>> spec = TraceSpec("t", (Scenario(3, physical_error_rate=0.02),), requests=4)
    >>> len(spec.trace_hash())
    16
    >>> spec2 = TraceSpec.from_dict(spec.to_dict())
    >>> spec2 == spec
    True
    """

    name: str
    scenarios: tuple[Scenario, ...]
    requests: int
    seed: int = 0
    arrival: str = "open"
    rate_rps: float | None = None
    clients: int = 4
    think_seconds: float = 0.0
    #: Open-loop inter-arrival law when ``rate_rps`` is set: "exponential"
    #: (Poisson process, the default) or "pareto" (heavy-tailed clumps at
    #: the same mean rate; tail index ``pareto_alpha``).
    interarrival: str = "exponential"
    pareto_alpha: float = 1.5
    #: Flash-crowd shape: when set, open-loop arrivals land in synchronized
    #: bursts of ``burst_size`` requests, ``burst_gap_seconds`` apart
    #: (takes precedence over ``rate_rps``).
    burst_size: int | None = None
    burst_gap_seconds: float = 0.0
    #: Slow-consumer streams replayed alongside the single-shot traffic:
    #: each pushes its rounds with ``stream_push_gap_seconds`` of think time
    #: between consecutive rounds, holding its connection open.
    slow_streams: int = 0
    stream_push_gap_seconds: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "scenarios",
            tuple(
                s if isinstance(s, Scenario) else Scenario.from_dict(s)
                for s in self.scenarios
            ),
        )
        if not self.name:
            raise ValueError("trace needs a non-empty name")
        if not self.scenarios:
            raise ValueError("trace needs at least one scenario")
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.arrival not in ARRIVAL_PROCESSES:
            raise ValueError(f"arrival must be one of {ARRIVAL_PROCESSES}, got {self.arrival!r}")
        if self.rate_rps is not None and self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive (or None for back-to-back)")
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.think_seconds < 0:
            raise ValueError("think_seconds must be non-negative")
        if self.interarrival not in INTERARRIVALS:
            raise ValueError(
                f"interarrival must be one of {INTERARRIVALS}, got {self.interarrival!r}"
            )
        if self.pareto_alpha <= 1.0:
            raise ValueError("pareto_alpha must be > 1 (finite mean gap)")
        if self.burst_size is not None and self.burst_size < 1:
            raise ValueError("burst_size must be >= 1 (or None)")
        if self.burst_gap_seconds < 0:
            raise ValueError("burst_gap_seconds must be non-negative")
        if self.slow_streams < 0:
            raise ValueError("slow_streams must be >= 0")
        if self.stream_push_gap_seconds < 0:
            raise ValueError("stream_push_gap_seconds must be non-negative")

    def trace_hash(self) -> str:
        """16-hex-digit content hash of the workload-determining fields.

        Excludes the display ``name`` (renaming a trace keeps its identity),
        mirroring :meth:`repro.sweeps.SweepSpec.spec_hash`.  Hostile-family
        fields enter the payload only at non-default values, so every
        pre-existing trace keeps its pinned hash.
        """
        payload = {
            "scenarios": [scenario.to_dict() for scenario in self.scenarios],
            "requests": self.requests,
            "seed": self.seed,
            "arrival": self.arrival,
            "rate_rps": self.rate_rps,
            "clients": self.clients,
            "think_seconds": self.think_seconds,
        }
        if self.interarrival != "exponential":
            payload["interarrival"] = self.interarrival
            payload["pareto_alpha"] = self.pareto_alpha
        if self.burst_size is not None:
            payload["burst_size"] = self.burst_size
            payload["burst_gap_seconds"] = self.burst_gap_seconds
        if self.slow_streams:
            payload["slow_streams"] = self.slow_streams
            payload["stream_push_gap_seconds"] = self.stream_push_gap_seconds
        return content_hash(payload)

    def to_dict(self) -> dict:
        data = asdict(self)
        # JSON-shaped: scenarios as a list (``asdict`` preserves the tuple).
        data["scenarios"] = list(data["scenarios"])
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TraceSpec":
        return cls(
            name=str(data["name"]),
            scenarios=tuple(Scenario.from_dict(s) for s in data["scenarios"]),
            requests=int(data["requests"]),
            seed=int(data.get("seed", 0)),
            arrival=str(data.get("arrival", "open")),
            rate_rps=None if data.get("rate_rps") is None else float(data["rate_rps"]),
            clients=int(data.get("clients", 4)),
            think_seconds=float(data.get("think_seconds", 0.0)),
            interarrival=str(data.get("interarrival", "exponential")),
            pareto_alpha=float(data.get("pareto_alpha", 1.5)),
            burst_size=None if data.get("burst_size") is None else int(data["burst_size"]),
            burst_gap_seconds=float(data.get("burst_gap_seconds", 0.0)),
            slow_streams=int(data.get("slow_streams", 0)),
            stream_push_gap_seconds=float(data.get("stream_push_gap_seconds", 0.0)),
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "TraceSpec":
        """Load a trace spec from a JSON file (the CLI's ``--trace`` input)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


@dataclass(frozen=True)
class TracedRequest:
    """One expanded trace entry: the request plus its scheduled arrival."""

    index: int
    scenario_index: int
    request: DecodeRequest
    #: Scheduled submission offset from the start of the replay (seconds);
    #: 0.0 for back-to-back and closed-loop traces.
    arrival_offset_seconds: float
    #: True when a fault plan replaced the syndrome with a malformed one —
    #: the service must answer STATUS_ERROR without disturbing its batch.
    poisoned: bool = False


@dataclass(frozen=True)
class TracedStream:
    """One expanded slow-consumer stream: its session plus the round pushes."""

    index: int
    scenario_index: int
    #: Per-measurement-round defect tuples, the ``push_round`` schedule.
    rounds: tuple[tuple[int, ...], ...]


@dataclass(frozen=True)
class Trace:
    """A fully-expanded trace: requests in submission order, plus the graphs.

    ``graphs[i]`` is the decoding graph of ``spec.scenarios[i]`` — shared by
    the ground-truth check and the direct-decode identity verifier so they
    never rebuild per request.  ``streams`` holds the expanded slow-consumer
    streams (empty unless ``spec.slow_streams`` is set).
    """

    spec: TraceSpec
    requests: tuple[TracedRequest, ...]
    graphs: tuple[DecodingGraph, ...]
    streams: tuple[TracedStream, ...] = ()


def _arrival_offsets(spec: TraceSpec) -> np.ndarray:
    """The deterministic submission schedule of an expanded trace."""
    if spec.arrival != "open":
        return np.zeros(spec.requests)
    if spec.burst_size is not None:
        # Flash crowd: whole bursts arrive at one instant, gaps between them.
        bursts = np.arange(spec.requests) // spec.burst_size
        return bursts * spec.burst_gap_seconds
    if spec.rate_rps is None:
        return np.zeros(spec.requests)
    arrival_rng = np.random.default_rng(stable_seed(spec.seed, "arrivals"))
    if spec.interarrival == "pareto":
        # numpy's pareto(a) is Lomax with mean 1/(a-1); rescale so the mean
        # gap matches 1/rate_rps — same offered load, heavy-tailed clumps.
        gaps = arrival_rng.pareto(spec.pareto_alpha, size=spec.requests)
        gaps *= (spec.pareto_alpha - 1.0) / spec.rate_rps
    else:
        gaps = arrival_rng.exponential(1.0 / spec.rate_rps, size=spec.requests)
    return np.cumsum(gaps)


def generate_trace(spec: TraceSpec, fault_plan: FaultPlan | None = None) -> Trace:
    """Expand a :class:`TraceSpec` into its deterministic request sequence.

    Scenario assignment uses a dedicated RNG stream seeded
    ``stable_seed(seed, "mix")``; scenario ``i``'s syndromes come from a
    :class:`~repro.graphs.syndrome.SyndromeSampler` seeded
    ``stable_seed(seed, f"scenario={i}")`` and are drawn in request order —
    so the trace is bit-identical across machines and replays.

    With a ``fault_plan``, requests it selects (``plan.poisons(index)``) have
    their syndrome replaced by a malformed one *after* the healthy draw, so
    every non-poisoned request carries exactly the syndrome it would carry in
    a fault-free replay — which is what lets the hostile smoke compare
    healthy-request digests across plans and worker counts.

    >>> trace = generate_trace(
    ...     TraceSpec("t", (Scenario(3, physical_error_rate=0.02),), requests=3)
    ... )
    >>> [tr.request.request_id for tr in trace.requests]
    [0, 1, 2]
    """
    mix_rng = np.random.default_rng(stable_seed(spec.seed, "mix"))
    weights = np.array([s.weight for s in spec.scenarios], dtype=float)
    weights /= weights.sum()
    scenario_indices = mix_rng.choice(len(spec.scenarios), size=spec.requests, p=weights)
    offsets = _arrival_offsets(spec)
    graphs = tuple(scenario.code().build_graph() for scenario in spec.scenarios)
    keys = tuple(scenario.session_key() for scenario in spec.scenarios)
    samplers = [
        SyndromeSampler(graph, seed=stable_seed(spec.seed, f"scenario={i}"))
        for i, graph in enumerate(graphs)
    ]
    requests = []
    for index, scenario_index in enumerate(scenario_indices):
        scenario_index = int(scenario_index)
        syndrome = samplers[scenario_index].sample()
        poisoned = fault_plan is not None and fault_plan.poisons(index)
        if poisoned:
            syndrome = poisoned_syndrome(len(graphs[scenario_index].vertices), index)
        requests.append(
            TracedRequest(
                index=index,
                scenario_index=scenario_index,
                request=DecodeRequest(
                    session=keys[scenario_index],
                    syndrome=syndrome,
                    request_id=index,
                ),
                arrival_offset_seconds=float(offsets[index]),
                poisoned=poisoned,
            )
        )
    streams = []
    for stream_index in range(spec.slow_streams):
        scenario_index = stream_index % len(spec.scenarios)
        sampler = SyndromeSampler(
            graphs[scenario_index],
            seed=stable_seed(spec.seed, f"stream={stream_index}"),
        )
        _, rounds = sampler.sample_rounds()
        streams.append(
            TracedStream(
                index=stream_index,
                scenario_index=scenario_index,
                rounds=tuple(tuple(r) for r in rounds),
            )
        )
    return Trace(spec=spec, requests=tuple(requests), graphs=graphs, streams=tuple(streams))


def make_trace(
    name: str,
    distances: Sequence[int],
    physical_error_rates: Sequence[float],
    decoders: Sequence[str],
    requests: int,
    *,
    noise_models: Sequence[str] = ("circuit_level",),
    **kwargs,
) -> TraceSpec:
    """Convenience constructor: the cross product of the axes as scenarios.

    >>> spec = make_trace("grid", [3, 5], [0.02], ["union-find"], requests=8)
    >>> len(spec.scenarios)
    2
    """
    scenarios = tuple(
        Scenario(
            distance=distance,
            noise=noise,
            physical_error_rate=rate,
            decoder=decoder,
        )
        for distance in distances
        for noise in noise_models
        for rate in physical_error_rates
        for decoder in decoders
    )
    return TraceSpec(name=name, scenarios=scenarios, requests=requests, **kwargs)


def zipf_scenarios(
    base: Scenario,
    sessions: int,
    *,
    exponent: float = 1.1,
    rate_step: float = 0.002,
) -> tuple[Scenario, ...]:
    """Expand one scenario into ``sessions`` distinct session keys, Zipf-weighted.

    Key ``k`` differs from the base by a small physical-error-rate offset
    (``base.physical_error_rate + k * rate_step``) — a distinct
    :class:`~repro.service.request.CodeSpec`, hence a distinct decoding graph
    and session — and carries weight ``(k + 1) ** -exponent``.  A handful of
    keys dominate while a long tail of rare keys churns the session LRU:
    sized above ``max_sessions``, this is the workload that defeats it.

    >>> keys = {s.session_key().key() for s in zipf_scenarios(Scenario(3), 6)}
    >>> len(keys)
    6
    """
    if sessions < 1:
        raise ValueError("sessions must be >= 1")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    scenarios = []
    for rank in range(sessions):
        rate = base.physical_error_rate + rank * rate_step
        if not 0.0 < rate < 1.0:
            raise ValueError(
                f"rank {rank} pushes physical_error_rate to {rate}; "
                "lower rate_step or sessions"
            )
        scenarios.append(
            Scenario(
                distance=base.distance,
                noise=base.noise,
                physical_error_rate=rate,
                decoder=base.decoder,
                weight=(rank + 1) ** -exponent,
            )
        )
    return tuple(scenarios)


def hostile_trace(
    family: str,
    *,
    requests: int = 64,
    seed: int = 2027,
    distance: int = 3,
    physical_error_rate: float = 0.02,
    decoder: str = "union-find",
    sessions: int = 12,
    rate_rps: float = 2000.0,
) -> TraceSpec:
    """Build one of the :data:`HOSTILE_FAMILIES` as a :class:`TraceSpec`.

    The four families stress what well-behaved traces never touch: the
    admission queue under synchronized bursts (``flash-crowd``), the batcher
    under clumped heavy-tailed arrivals (``pareto``), the session LRU under
    Zipf key skew (``zipf``), and the shared scheduler under slow-consumer
    streams (``slow-consumer``).

    >>> hostile_trace("zipf", requests=8).scenarios[0].weight
    1.0
    """
    base = Scenario(
        distance=distance,
        physical_error_rate=physical_error_rate,
        decoder=decoder,
    )
    name = f"hostile-{family}"
    if family == "flash-crowd":
        return TraceSpec(
            name,
            (base,),
            requests=requests,
            seed=seed,
            burst_size=max(1, requests // 4),
            burst_gap_seconds=0.005,
        )
    if family == "pareto":
        return TraceSpec(
            name,
            (base,),
            requests=requests,
            seed=seed,
            rate_rps=rate_rps,
            interarrival="pareto",
            pareto_alpha=1.5,
        )
    if family == "zipf":
        return TraceSpec(
            name,
            zipf_scenarios(base, sessions),
            requests=requests,
            seed=seed,
        )
    if family == "slow-consumer":
        return TraceSpec(
            name,
            (base,),
            requests=requests,
            seed=seed,
            slow_streams=2,
            stream_push_gap_seconds=0.001,
        )
    raise ValueError(f"family must be one of {HOSTILE_FAMILIES}, got {family!r}")


#: Pinned trace of the CI ``perf-trajectory`` job (``repro serve-bench
#: --smoke``): a mixed-distance, mixed-decoder open-loop burst, small enough
#: for a pull-request gate, varied enough that micro-batching, session
#: caching and the mixed-scenario dispatch path all exercise.  Seeded like
#: :data:`repro.sweeps.SMOKE_SPEC` so the two CI artifacts stay in step.
SMOKE_TRACE = TraceSpec(
    name="ci-smoke",
    scenarios=(
        Scenario(distance=3, physical_error_rate=0.02, decoder="micro-blossom"),
        Scenario(distance=5, physical_error_rate=0.02, decoder="micro-blossom"),
        Scenario(distance=3, physical_error_rate=0.03, decoder="union-find"),
        Scenario(distance=5, physical_error_rate=0.03, decoder="union-find"),
    ),
    requests=96,
    seed=2026,
    arrival="open",
    rate_rps=None,
)


#: Pinned noise-family mix: every non-i.i.d. noise family the sampler
#: supports (correlated bursts, heralded erasures, time-varying p) plus a
#: phenomenological control, replayed through the full service path so the
#: wire protocol, session cache and outcome cache all see erasure-carrying
#: and burst-correlated syndromes.  ``tests/conformance`` pins its
#: ``trace_hash`` and replays it for worker-count-independent digests.
NOISE_FAMILY_SMOKE_TRACE = TraceSpec(
    name="noise-family-smoke",
    scenarios=(
        Scenario(distance=3, noise="correlated_burst", physical_error_rate=0.01,
                 decoder="micro-blossom"),
        Scenario(distance=3, noise="erasure", physical_error_rate=0.01,
                 decoder="union-find"),
        Scenario(distance=3, noise="time_varying", physical_error_rate=0.02,
                 decoder="micro-blossom"),
        Scenario(distance=3, noise="phenomenological", physical_error_rate=0.02,
                 decoder="union-find"),
    ),
    requests=48,
    seed=2028,
    arrival="open",
    rate_rps=None,
)


#: Pinned hostile mix of ``repro serve-bench --hostile-smoke``: one small
#: trace per family, replayed under :data:`repro.service.faults.HOSTILE_SMOKE_PLAN`.
#: Everything — arrivals, syndromes, poison selection — is seed-stable, so
#: the healthy-request digests the CI gate compares are machine-independent.
HOSTILE_SMOKE_TRACES: tuple[tuple[str, TraceSpec], ...] = tuple(
    (family, hostile_trace(family, requests=48, seed=2027))
    for family in HOSTILE_FAMILIES
)
