"""Seed-stable synthetic request traces for service load evaluation.

A :class:`TraceSpec` describes a service workload declaratively: a mix of
*scenarios* (code distance, noise family, physical error rate, decoder —
weighted), how many requests to issue, and the arrival process — **open
loop** (requests arrive on a schedule, optionally Poisson at ``rate_rps``,
regardless of completions — models independent outside users) or **closed
loop** (``clients`` concurrent callers, each issuing its next request only
after the previous one completes — models a fixed worker fleet).

Trace expansion is *seed-stable* in the same sense as sweep expansion
(:mod:`repro.sweeps.spec`): request ``i``'s scenario assignment, syndrome and
(open-loop) arrival offset are a pure function of ``(seed, scenarios,
requests, arrival process)``, derived through
:func:`repro.api.hashing.stable_seed` — never of wall-clock time, worker
count, or completion order.  Replaying a trace therefore decodes identical
syndromes in an identical submission order on every machine, which is what
makes service benchmarks comparable across commits
(``BENCH_service.json``) and lets tests pin worker-count independence.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from ..api.hashing import content_hash, stable_seed
from ..graphs.decoding_graph import DecodingGraph
from ..graphs.syndrome import SyndromeSampler
from .request import CodeSpec, DecodeRequest, SessionKey

#: Supported arrival processes.
ARRIVAL_PROCESSES = ("open", "closed")


@dataclass(frozen=True)
class Scenario:
    """One weighted cell of a trace's workload mix.

    >>> Scenario(distance=3, physical_error_rate=0.02).session_key().decoder
    'micro-blossom'
    """

    distance: int
    noise: str = "circuit_level"
    physical_error_rate: float = 0.001
    decoder: str = "micro-blossom"
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("scenario weight must be positive")

    def code(self) -> CodeSpec:
        return CodeSpec(
            distance=self.distance,
            noise=self.noise,
            physical_error_rate=self.physical_error_rate,
        )

    def session_key(self) -> SessionKey:
        """The service session key every request of this scenario targets."""
        return SessionKey(self.code(), self.decoder)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        return cls(
            distance=int(data["distance"]),
            noise=str(data.get("noise", "circuit_level")),
            physical_error_rate=float(data.get("physical_error_rate", 0.001)),
            decoder=str(data.get("decoder", "micro-blossom")),
            weight=float(data.get("weight", 1.0)),
        )


@dataclass(frozen=True)
class TraceSpec:
    """Declarative description of one synthetic service workload.

    ``rate_rps=None`` in an open-loop trace means *back-to-back* submission
    (arrival offsets all zero — the service is driven as fast as the client
    can submit, the throughput-measurement mode); a finite rate draws
    exponential (Poisson-process) inter-arrival gaps from the trace seed.

    >>> spec = TraceSpec("t", (Scenario(3, physical_error_rate=0.02),), requests=4)
    >>> len(spec.trace_hash())
    16
    >>> spec2 = TraceSpec.from_dict(spec.to_dict())
    >>> spec2 == spec
    True
    """

    name: str
    scenarios: tuple[Scenario, ...]
    requests: int
    seed: int = 0
    arrival: str = "open"
    rate_rps: float | None = None
    clients: int = 4
    think_seconds: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "scenarios",
            tuple(
                s if isinstance(s, Scenario) else Scenario.from_dict(s)
                for s in self.scenarios
            ),
        )
        if not self.name:
            raise ValueError("trace needs a non-empty name")
        if not self.scenarios:
            raise ValueError("trace needs at least one scenario")
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.arrival not in ARRIVAL_PROCESSES:
            raise ValueError(f"arrival must be one of {ARRIVAL_PROCESSES}, got {self.arrival!r}")
        if self.rate_rps is not None and self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive (or None for back-to-back)")
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.think_seconds < 0:
            raise ValueError("think_seconds must be non-negative")

    def trace_hash(self) -> str:
        """16-hex-digit content hash of the workload-determining fields.

        Excludes the display ``name`` (renaming a trace keeps its identity),
        mirroring :meth:`repro.sweeps.SweepSpec.spec_hash`.
        """
        payload = {
            "scenarios": [scenario.to_dict() for scenario in self.scenarios],
            "requests": self.requests,
            "seed": self.seed,
            "arrival": self.arrival,
            "rate_rps": self.rate_rps,
            "clients": self.clients,
            "think_seconds": self.think_seconds,
        }
        return content_hash(payload)

    def to_dict(self) -> dict:
        data = asdict(self)
        # JSON-shaped: scenarios as a list (``asdict`` preserves the tuple).
        data["scenarios"] = list(data["scenarios"])
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TraceSpec":
        return cls(
            name=str(data["name"]),
            scenarios=tuple(Scenario.from_dict(s) for s in data["scenarios"]),
            requests=int(data["requests"]),
            seed=int(data.get("seed", 0)),
            arrival=str(data.get("arrival", "open")),
            rate_rps=None if data.get("rate_rps") is None else float(data["rate_rps"]),
            clients=int(data.get("clients", 4)),
            think_seconds=float(data.get("think_seconds", 0.0)),
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "TraceSpec":
        """Load a trace spec from a JSON file (the CLI's ``--trace`` input)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


@dataclass(frozen=True)
class TracedRequest:
    """One expanded trace entry: the request plus its scheduled arrival."""

    index: int
    scenario_index: int
    request: DecodeRequest
    #: Scheduled submission offset from the start of the replay (seconds);
    #: 0.0 for back-to-back and closed-loop traces.
    arrival_offset_seconds: float


@dataclass(frozen=True)
class Trace:
    """A fully-expanded trace: requests in submission order, plus the graphs.

    ``graphs[i]`` is the decoding graph of ``spec.scenarios[i]`` — shared by
    the ground-truth check and the direct-decode identity verifier so they
    never rebuild per request.
    """

    spec: TraceSpec
    requests: tuple[TracedRequest, ...]
    graphs: tuple[DecodingGraph, ...]


def generate_trace(spec: TraceSpec) -> Trace:
    """Expand a :class:`TraceSpec` into its deterministic request sequence.

    Scenario assignment uses a dedicated RNG stream seeded
    ``stable_seed(seed, "mix")``; scenario ``i``'s syndromes come from a
    :class:`~repro.graphs.syndrome.SyndromeSampler` seeded
    ``stable_seed(seed, f"scenario={i}")`` and are drawn in request order —
    so the trace is bit-identical across machines and replays.

    >>> trace = generate_trace(
    ...     TraceSpec("t", (Scenario(3, physical_error_rate=0.02),), requests=3)
    ... )
    >>> [tr.request.request_id for tr in trace.requests]
    [0, 1, 2]
    """
    mix_rng = np.random.default_rng(stable_seed(spec.seed, "mix"))
    weights = np.array([s.weight for s in spec.scenarios], dtype=float)
    weights /= weights.sum()
    scenario_indices = mix_rng.choice(len(spec.scenarios), size=spec.requests, p=weights)
    if spec.arrival == "open" and spec.rate_rps is not None:
        arrival_rng = np.random.default_rng(stable_seed(spec.seed, "arrivals"))
        offsets = np.cumsum(arrival_rng.exponential(1.0 / spec.rate_rps, size=spec.requests))
    else:
        offsets = np.zeros(spec.requests)
    graphs = tuple(scenario.code().build_graph() for scenario in spec.scenarios)
    keys = tuple(scenario.session_key() for scenario in spec.scenarios)
    samplers = [
        SyndromeSampler(graph, seed=stable_seed(spec.seed, f"scenario={i}"))
        for i, graph in enumerate(graphs)
    ]
    requests = []
    for index, scenario_index in enumerate(scenario_indices):
        scenario_index = int(scenario_index)
        syndrome = samplers[scenario_index].sample()
        requests.append(
            TracedRequest(
                index=index,
                scenario_index=scenario_index,
                request=DecodeRequest(
                    session=keys[scenario_index],
                    syndrome=syndrome,
                    request_id=index,
                ),
                arrival_offset_seconds=float(offsets[index]),
            )
        )
    return Trace(spec=spec, requests=tuple(requests), graphs=graphs)


def make_trace(
    name: str,
    distances: Sequence[int],
    physical_error_rates: Sequence[float],
    decoders: Sequence[str],
    requests: int,
    *,
    noise_models: Sequence[str] = ("circuit_level",),
    **kwargs,
) -> TraceSpec:
    """Convenience constructor: the cross product of the axes as scenarios.

    >>> spec = make_trace("grid", [3, 5], [0.02], ["union-find"], requests=8)
    >>> len(spec.scenarios)
    2
    """
    scenarios = tuple(
        Scenario(
            distance=distance,
            noise=noise,
            physical_error_rate=rate,
            decoder=decoder,
        )
        for distance in distances
        for noise in noise_models
        for rate in physical_error_rates
        for decoder in decoders
    )
    return TraceSpec(name=name, scenarios=scenarios, requests=requests, **kwargs)


#: Pinned trace of the CI ``perf-trajectory`` job (``repro serve-bench
#: --smoke``): a mixed-distance, mixed-decoder open-loop burst, small enough
#: for a pull-request gate, varied enough that micro-batching, session
#: caching and the mixed-scenario dispatch path all exercise.  Seeded like
#: :data:`repro.sweeps.SMOKE_SPEC` so the two CI artifacts stay in step.
SMOKE_TRACE = TraceSpec(
    name="ci-smoke",
    scenarios=(
        Scenario(distance=3, physical_error_rate=0.02, decoder="micro-blossom"),
        Scenario(distance=5, physical_error_rate=0.02, decoder="micro-blossom"),
        Scenario(distance=3, physical_error_rate=0.03, decoder="union-find"),
        Scenario(distance=5, physical_error_rate=0.03, decoder="union-find"),
    ),
    requests=96,
    seed=2026,
    arrival="open",
    rate_rps=None,
)
