"""The decode-service front end: coalesce, dispatch, fan out, shed.

:class:`DecodeService` multiplexes many concurrent single-shot decode
requests onto the batched machinery the repository already has:

1. **Admission.**  :meth:`~DecodeService.submit` places the request on a
   *bounded* queue.  A full queue is backpressure: under the ``"block"``
   overload policy the submitter waits (optionally with a timeout, raising
   :class:`ServiceOverloadedError`); under ``"shed"`` the request is answered
   immediately with a :data:`~repro.service.request.STATUS_SHED` response and
   never reaches a decoder.
2. **Coalescing.**  A dispatcher thread drains the queue into a
   :class:`~repro.service.batcher.MicroBatcher`: requests sharing a
   :class:`~repro.service.request.SessionKey` accumulate into one batch that
   flushes on ``max_batch_size`` or ``max_wait_seconds`` — whichever first.
3. **Dispatch.**  Flushed batches fan out across a thread pool of
   ``workers``.  Each worker fetches the batch's reusable
   :class:`repro.api.DecoderSession` from the service's LRU
   (:class:`~repro.service.cache.SessionCache`), locks it, and decodes the
   batch back to back.  Results are **bit-identical** to calling
   ``decode_detailed`` directly — batching, caching and concurrency are
   invisible in the outcomes (pinned by ``tests/test_service.py``).
4. **Streams.**  :meth:`~DecodeService.open_stream` returns a long-lived
   :class:`ServiceStream` whose ``begin``/``push_round``/``finalize`` calls
   travel through the *same* bounded queue, dispatcher and worker pool as
   single-shot requests — one scheduler, one backpressure domain — while a
   per-stream serial executor preserves round order.

The service clock is injectable (``clock=time.monotonic`` by default) and the
batching core is pure (:mod:`repro.service.batcher`), so timing behaviour is
testable without real sleeps.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
import warnings
from collections import Counter, deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields
from typing import Callable, Iterable

from ..api.outcome import DecodeOutcome
from ..evaluation.engine import LatencyHistogram
from ..lut.outcome_cache import OutcomeCache, outcome_cache_key
from ..stream import get_streaming_decoder
from .batcher import Batch, MicroBatcher
from .cache import SessionCache, SessionFactory, build_session
from .config import OVERLOAD_POLICIES, ServiceConfig
from .faults import FaultInjector
from .request import (
    STATUS_ERROR,
    STATUS_SHED,
    DecodeRequest,
    DecodeResponse,
    SessionKey,
)

__all__ = [
    "OVERLOAD_POLICIES",  # re-exported; lives in repro.service.config now
    "DecodeService",
    "ServiceClosedError",
    "ServiceDrainError",
    "ServiceOverloadedError",
    "ServiceStats",
    "ServiceStream",
    "service_histogram",
]

#: The DecodeService keyword arguments absorbed by :class:`ServiceConfig`
#: (accepted individually only through the deprecation shim).
_CONFIG_KWARGS = frozenset(spec.name for spec in dataclass_fields(ServiceConfig))

#: Service histograms span 100 ns .. 10 s (queue delays under load dwarf the
#: decode latencies the evaluation histograms are tuned for).
_HISTOGRAM_LOW = 1e-7
_HISTOGRAM_HIGH = 10.0


def service_histogram() -> LatencyHistogram:
    """A latency histogram with service-appropriate bounds (100 ns – 10 s)."""
    return LatencyHistogram(low=_HISTOGRAM_LOW, high=_HISTOGRAM_HIGH)


class ServiceClosedError(RuntimeError):
    """Raised when submitting to a closed (or never-started, then closed) service."""


class ServiceOverloadedError(RuntimeError):
    """Raised when the bounded queue stays full past the submission timeout."""


class ServiceDrainError(RuntimeError):
    """Raised by :meth:`DecodeService.close` when the drain exceeds its timeout.

    A clean drain is part of the service's fault-isolation contract: stuck
    here means some admitted work (a wedged batch, a hung worker) never
    resolved — exactly what the hostile smoke gate must fail on rather than
    hang CI.
    """


@dataclass
class ServiceStats:
    """Aggregate counters of one :class:`DecodeService` instance.

    Updated under the service's stats lock; read a consistent copy with
    :meth:`DecodeService.stats_snapshot`.
    """

    submitted: int = 0
    completed: int = 0
    shed: int = 0
    #: Requests resolved with a :data:`~repro.service.request.STATUS_ERROR`
    #: response — a failed decode (e.g. poisoned syndrome) or an exhausted
    #: session-build retry budget.  Every submitted request is accounted for:
    #: ``submitted == completed + shed + errors + in-flight``.
    errors: int = 0
    #: Session-build retry attempts (each failed build below the retry
    #: budget counts one).
    retries: int = 0
    batches: int = 0
    stream_ops: int = 0
    cache_hits: int = 0
    batch_sizes: Counter = field(default_factory=Counter)
    queue_delay: LatencyHistogram = field(default_factory=service_histogram)
    latency: LatencyHistogram = field(default_factory=service_histogram)

    @property
    def mean_batch_size(self) -> float:
        total = sum(self.batch_sizes.values())
        if not total:
            return 0.0
        return sum(size * count for size, count in self.batch_sizes.items()) / total


class _DecodeJob:
    """One queued single-shot request plus its response future.

    ``cache_key`` is the request's outcome-cache key, carried through the
    micro-batcher so the worker can publish the decode into the cache —
    ``None`` when the service runs without an outcome cache.
    """

    __slots__ = ("request", "future", "arrival_seconds", "cache_key")

    def __init__(
        self,
        request: DecodeRequest,
        future: Future,
        arrival: float,
        cache_key: str | None = None,
    ):
        self.request = request
        self.future = future
        self.arrival_seconds = arrival
        self.cache_key = cache_key


class _StreamJob:
    """One queued stream operation (begin/push/finalize) plus its future."""

    __slots__ = ("stream", "op", "payload", "future", "arrival_seconds")

    def __init__(self, stream: "ServiceStream", op: str, payload, future: Future, arrival: float):
        self.stream = stream
        self.op = op
        self.payload = payload
        self.future = future
        self.arrival_seconds = arrival

    def run(self):
        decoder = self.stream.decoder
        if self.op == "begin":
            decoder.begin(self.stream.graph, rounds_hint=self.payload)
            return None
        if self.op == "push":
            return decoder.push_round(self.payload)
        return decoder.finalize()


class _SerialExecutor:
    """Run jobs on a shared pool, strictly one at a time, in FIFO order.

    Each :class:`ServiceStream` owns one: stream operations may be decoded by
    any worker thread, but never concurrently and never out of order — the
    round-push protocol is stateful.
    """

    def __init__(self, pool: ThreadPoolExecutor) -> None:
        self._pool = pool
        self._jobs: deque = deque()
        self._active = False
        self._lock = threading.Lock()

    def submit(self, job) -> None:
        with self._lock:
            self._jobs.append(job)
            if self._active:
                return
            self._active = True
        self._pool.submit(self._drain)

    def _drain(self) -> None:
        while True:
            with self._lock:
                if not self._jobs:
                    self._active = False
                    return
                job = self._jobs.popleft()
            if not job.future.set_running_or_notify_cancel():
                continue
            try:
                result = job.run()
            except BaseException as exc:  # propagate to the caller's future
                job.future.set_exception(exc)
            else:
                job.future.set_result(result)


_STOP = object()


class DecodeService:
    """Asynchronous decode front end with dynamic micro-batching.

    Lifecycle: construct → :meth:`start` (or use as a context manager) →
    :meth:`submit`/:meth:`decode`/:meth:`open_stream` → :meth:`close`.
    Submissions are accepted before :meth:`start` (they wait on the queue),
    which is also how tests exercise backpressure deterministically.

    Sizing and policy live in a :class:`~repro.service.ServiceConfig`; the
    remaining keyword arguments (``clock``, ``session_factory``, ``sleep``)
    are runtime injection points, not configuration.  Passing the old sizing
    kwargs directly still works through a deprecation shim.

    >>> from repro.graphs import SyndromeSampler
    >>> from repro.service import CodeSpec, DecodeRequest, SessionKey
    >>> key = SessionKey(CodeSpec(3, physical_error_rate=0.02), "union-find")
    >>> sampler = SyndromeSampler(CodeSpec(3, physical_error_rate=0.02).build_graph(), seed=5)
    >>> with DecodeService(ServiceConfig(workers=2, max_wait_seconds=0.001)) as service:
    ...     response = service.decode(DecodeRequest(key, sampler.sample()))
    >>> response.ok and response.batch_size >= 1
    True
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        session_factory: SessionFactory = build_session,
        sleep: Callable[[float], None] = time.sleep,
        **legacy,
    ) -> None:
        if legacy:
            unknown = sorted(set(legacy) - _CONFIG_KWARGS)
            if unknown:
                raise TypeError(f"DecodeService got unexpected keyword arguments: {unknown}")
            if config is not None:
                raise TypeError(
                    "pass sizing either as DecodeService(config=ServiceConfig(...)) "
                    "or as legacy keyword arguments, not both"
                )
            warnings.warn(
                "passing DecodeService sizing keywords directly is deprecated; "
                "use DecodeService(config=ServiceConfig(...))",
                DeprecationWarning,
                stacklevel=2,
            )
            config = ServiceConfig(**legacy)
        elif config is None:
            config = ServiceConfig()
        elif not isinstance(config, ServiceConfig):
            raise TypeError(f"config must be a ServiceConfig, got {type(config).__name__}")
        self.config = config
        self.workers = config.workers
        self.overload_policy = config.overload_policy
        self.session_build_retries = config.session_build_retries
        self.session_build_backoff_seconds = config.session_build_backoff_seconds
        self._clock = clock
        self._sleep = sleep
        # Deterministic fault injection (repro.service.faults): wraps the
        # session factory with seed-stable build crashes and delays straggler
        # workers.  None, or an inactive plan, injects nothing.
        fault_plan = config.fault_plan
        self._injector: FaultInjector | None = (
            FaultInjector(fault_plan)
            if fault_plan is not None and fault_plan.is_active()
            else None
        )
        if self._injector is not None:
            session_factory = self._injector.wrap_factory(session_factory)
        self._queue: queue_module.Queue = queue_module.Queue(maxsize=config.queue_capacity)
        self._batcher = MicroBatcher(
            max_batch_size=config.max_batch_size,
            max_wait_seconds=config.max_wait_seconds,
        )
        self._sessions = SessionCache(
            max_sessions=config.max_sessions, session_factory=session_factory
        )
        # Content-addressed decode-outcome cache (repro.lut), consulted in
        # submit() before a request ever reaches the micro-batcher.  None /
        # 0 / negative ⇒ disabled (the default: memoisation across requests
        # is only worth its bytes for repeat-heavy traffic).
        cache_bytes = config.outcome_cache_bytes
        self.outcome_cache: OutcomeCache | None = (
            OutcomeCache(cache_bytes) if cache_bytes is not None and cache_bytes > 0 else None
        )
        self._pool: ThreadPoolExecutor | None = None
        self._dispatcher: threading.Thread | None = None
        self._started = False
        self._closed = False
        self._stats_lock = threading.Lock()
        self.stats = ServiceStats()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._started

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def sessions(self) -> SessionCache:
        """The service's LRU of reusable decoder sessions."""
        return self._sessions

    def start(self) -> "DecodeService":
        """Spin up the worker pool and the dispatcher thread (idempotent)."""
        if self._closed:
            raise ServiceClosedError("service is closed")
        if self._started:
            return self
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-service",
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name="repro-service-dispatch",
            daemon=True,
        )
        self._started = True
        self._dispatcher.start()
        return self

    def close(self, wait: bool = True, timeout: float | None = None) -> None:
        """Stop accepting work, drain everything already admitted, shut down.

        ``timeout`` bounds the dispatcher drain: if admitted work has not
        drained within ``timeout`` seconds, :class:`ServiceDrainError` is
        raised instead of hanging forever — the hostile smoke benchmark runs
        ``close`` under a timeout so a non-isolated fault fails CI instead of
        wedging it.  ``None`` (the default) waits indefinitely.
        """
        if self._closed:
            return
        self._closed = True
        if not self._started:
            # Never started: nothing will drain the queue — fail the waiters.
            while True:
                try:
                    job = self._queue.get_nowait()
                except queue_module.Empty:
                    break
                job.future.set_exception(ServiceClosedError("service closed before start"))
            return
        self._queue.put(_STOP)
        self._dispatcher.join(timeout)
        if self._dispatcher.is_alive():
            raise ServiceDrainError(
                f"service failed to drain within {timeout}s: the dispatcher is "
                "still processing admitted work (wedged batch or hung worker?)"
            )
        self._pool.shutdown(wait=wait)
        # A submit() racing close() can slip its job in behind the sentinel
        # (the _closed check and the put are not atomic); the dispatcher has
        # already exited, so fail those futures rather than leave them hanging.
        while True:
            try:
                job = self._queue.get_nowait()
            except queue_module.Empty:
                break
            if job is not _STOP:
                job.future.set_exception(ServiceClosedError("service closed during submit"))

    def __enter__(self) -> "DecodeService":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(self, request: DecodeRequest, timeout: float | None = None) -> Future:
        """Queue one decode request; returns a future of :class:`DecodeResponse`.

        Backpressure at a full queue follows the service's overload policy:
        ``"block"`` waits up to ``timeout`` seconds (forever when ``None``)
        and raises :class:`ServiceOverloadedError` on expiry; ``"shed"``
        resolves the future immediately with a
        :data:`~repro.service.request.STATUS_SHED` response.

        With an outcome cache configured, a content-addressed hit resolves
        the future right here — the request never touches the queue, the
        micro-batcher or a decoder session (``response.cached`` is True).
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        future: Future = Future()
        arrival = self._clock()
        cache_key: str | None = None
        if self.outcome_cache is not None:
            cache_key = outcome_cache_key(request.session.key(), request.syndrome)
            outcome = self.outcome_cache.get(cache_key)
            if outcome is not None:
                latency = max(0.0, self._clock() - arrival)
                with self._stats_lock:
                    self.stats.submitted += 1
                    self.stats.completed += 1
                    self.stats.cache_hits += 1
                    # A hit never queues, but it IS a completed request: give
                    # both histograms one sample each so their counts stay in
                    # lock-step with `completed` (queue delay is exactly 0).
                    self.stats.queue_delay.add(0.0)
                    self.stats.latency.add(latency)
                future.set_result(
                    DecodeResponse(
                        request=request,
                        outcome=outcome,
                        latency_seconds=latency,
                        cached=True,
                    )
                )
                return future
        job = _DecodeJob(request, future, arrival, cache_key)
        try:
            if self.overload_policy == "shed":
                self._queue.put_nowait(job)
            else:
                self._queue.put(job, timeout=timeout)
        except queue_module.Full:
            if self.overload_policy == "shed":
                # A shed request was still *offered* — count it in submitted
                # too, so `submitted == completed + shed + errors + in-flight`
                # holds and the bench artifacts report true offered load.
                with self._stats_lock:
                    self.stats.submitted += 1
                    self.stats.shed += 1
                future.set_result(DecodeResponse(request=request, status=STATUS_SHED))
                return future
            raise ServiceOverloadedError(
                f"queue stayed full for {timeout}s (capacity "
                f"{self._queue.maxsize}); raise queue_capacity, add workers, "
                "or use overload_policy='shed'"
            ) from None
        with self._stats_lock:
            self.stats.submitted += 1
        return future

    def decode(self, request: DecodeRequest, timeout: float | None = None) -> DecodeResponse:
        """Synchronous convenience wrapper: :meth:`submit` + wait."""
        return self.submit(request).result(timeout)

    def decode_many(
        self, requests: Iterable[DecodeRequest], timeout: float | None = None
    ) -> list[DecodeResponse]:
        """Submit many requests, then wait for all (responses in input order)."""
        futures = [self.submit(request) for request in requests]
        return [future.result(timeout) for future in futures]

    # ------------------------------------------------------------------
    # streams
    # ------------------------------------------------------------------
    def open_stream(
        self,
        key: SessionKey,
        *,
        window: int | None = None,
        commit_depth: int | None = None,
    ) -> "ServiceStream":
        """Open a long-lived streaming connection through the scheduler.

        The stream shares the service's bounded queue, dispatcher and worker
        pool with single-shot traffic; its own round order is preserved by a
        per-stream serial executor.  Requires a started service.
        """
        if not self._started or self._closed:
            raise ServiceClosedError("open_stream requires a started, open service")
        return ServiceStream(self, key, window=window, commit_depth=commit_depth)

    def _enqueue_stream(self, job: _StreamJob, timeout: float | None) -> None:
        if self._closed:
            raise ServiceClosedError("service is closed")
        try:
            if self.overload_policy == "shed":
                self._queue.put_nowait(job)
            else:
                self._queue.put(job, timeout=timeout)
        except queue_module.Full:
            # Dropping a round would corrupt the stream, so overload on the
            # stream path is always an error, never a silent shed.
            raise ServiceOverloadedError("queue full; stream operations cannot be shed") from None
        with self._stats_lock:
            self.stats.stream_ops += 1

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        batcher = self._batcher
        while True:
            deadline = batcher.next_deadline()
            timeout = None if deadline is None else max(0.0, deadline - self._clock())
            try:
                job = self._queue.get(timeout=timeout)
            except queue_module.Empty:
                job = None
            if job is _STOP:
                for batch in batcher.drain():
                    self._dispatch_batch(batch)
                return
            if isinstance(job, _StreamJob):
                job.stream._serial.submit(job)
            elif job is not None:
                full = batcher.add(job.request.session, job, self._clock())
                if full is not None:
                    self._dispatch_batch(full)
            for batch in batcher.due(self._clock()):
                self._dispatch_batch(batch)

    def _dispatch_batch(self, batch: Batch) -> None:
        with self._stats_lock:
            self.stats.batches += 1
            self.stats.batch_sizes[batch.size] += 1
        self._pool.submit(self._run_batch, batch)

    def _acquire_with_retry(self, batch: Batch):
        """Build/fetch the batch's session, retrying crashes with backoff.

        Returns the cache entry, or the final exception once the bounded
        retry budget (``session_build_retries``) is exhausted.  Transient
        build crashes — real ones or injected by a
        :class:`~repro.service.faults.FaultPlan` — are therefore invisible
        to callers beyond added latency.
        """
        attempt = 0
        while True:
            try:
                return self._sessions.acquire(batch.key)
            except BaseException as exc:
                if attempt >= self.session_build_retries:
                    return exc
                attempt += 1
                with self._stats_lock:
                    self.stats.retries += 1
                if self.session_build_backoff_seconds > 0:
                    self._sleep(self.session_build_backoff_seconds * attempt)

    def _fail_job(self, job: _DecodeJob, exc: BaseException, started: float) -> None:
        """Resolve one job with a STATUS_ERROR response (isolated failure)."""
        done = self._clock()
        with self._stats_lock:
            self.stats.errors += 1
        job.future.set_result(
            DecodeResponse(
                request=job.request,
                status=STATUS_ERROR,
                queue_delay_seconds=max(0.0, started - job.arrival_seconds),
                latency_seconds=max(0.0, done - job.arrival_seconds),
                error=f"{type(exc).__name__}: {exc}",
            )
        )

    def _run_batch(self, batch: Batch) -> None:
        if self._injector is not None:
            delay = self._injector.worker_delay()
            if delay > 0:  # straggling worker: timing-only, never outcomes
                self._sleep(delay)
        started = self._clock()
        entry = self._acquire_with_retry(batch)
        if isinstance(entry, BaseException):
            # Session build kept crashing past the retry budget.  The batch
            # fails as responses, not exceptions: a crashed build is a
            # service-side fault, and callers see a uniform STATUS_ERROR
            # surface whether one request or a whole batch was affected.
            for job in batch.items:
                if job.future.set_running_or_notify_cancel():
                    self._fail_job(job, entry, started)
            return
        with entry.lock:
            for job in batch.items:
                if not job.future.set_running_or_notify_cancel():
                    continue
                try:
                    outcome = entry.session.decode_detailed(job.request.syndrome)
                except BaseException as exc:
                    # Isolation: a poisoned request resolves ITS future with
                    # STATUS_ERROR; the rest of the batch decodes normally on
                    # the same session.  The raise may have left the stateful
                    # decoder half-mutated, so restore the pristine state
                    # before the next request touches it.
                    try:
                        entry.session.reset()
                    except BaseException as reset_exc:  # pragma: no cover
                        exc = reset_exc
                    self._fail_job(job, exc, started)
                    continue
                if self.outcome_cache is not None and job.cache_key is not None:
                    self.outcome_cache.put(job.cache_key, outcome)
                done = self._clock()
                queue_delay = max(0.0, started - job.arrival_seconds)
                latency = max(0.0, done - job.arrival_seconds)
                with self._stats_lock:
                    self.stats.completed += 1
                    self.stats.queue_delay.add(queue_delay)
                    self.stats.latency.add(latency)
                job.future.set_result(
                    DecodeResponse(
                        request=job.request,
                        outcome=outcome,
                        queue_delay_seconds=queue_delay,
                        latency_seconds=latency,
                        batch_size=batch.size,
                    )
                )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> dict:
        """One consistent plain-dict snapshot of service + session statistics.

        The whole snapshot — request counters, queue depth, and the nested
        session/outcome-cache/fault snapshots — is assembled under the stats
        lock, so the top-level counters are mutually consistent: a reader
        never observes ``completed`` incremented without its latency sample,
        or a ``submitted``/``completed`` pair torn across a request.

        What may still race (by design — workers only take the stats lock at
        request *completion*): the nested snapshots take their own component
        locks inside the stats lock, so the session and outcome-cache
        counters can run *ahead* of the request counters by work currently
        in flight (e.g. a cache ``put`` whose request has not yet counted as
        ``completed``), and ``queue_depth`` is an instantaneous
        :meth:`queue.Queue.qsize` reading that admissions concurrent with
        the snapshot may already have moved.
        """
        with self._stats_lock:
            stats = self.stats
            snapshot = {
                "submitted": stats.submitted,
                "completed": stats.completed,
                "shed": stats.shed,
                "errors": stats.errors,
                "retries": stats.retries,
                "batches": stats.batches,
                "stream_ops": stats.stream_ops,
                "cache_hits": stats.cache_hits,
                "mean_batch_size": stats.mean_batch_size,
                "batch_sizes": dict(stats.batch_sizes),
                "queue_delay_p99_us": stats.queue_delay.percentile(99) * 1e6,
                "latency_p99_us": stats.latency.percentile(99) * 1e6,
                # Instantaneous admission-queue depth (jobs admitted but not
                # yet drained by the dispatcher; includes stream operations).
                "queue_depth": self._queue.qsize(),
            }
            # Each component takes its own lock (workers mutate their
            # hit/miss/eviction counters concurrently, and an unlocked read
            # could observe a torn combination).  Nesting those reads inside
            # the stats lock is deadlock-free — no code path acquires the
            # stats lock while holding a component lock.
            snapshot["sessions"] = self._sessions.stats_snapshot()
            snapshot["outcome_cache"] = (
                self.outcome_cache.stats_snapshot()
                if self.outcome_cache is not None
                else {"enabled": False}
            )
            snapshot["faults"] = (
                self._injector.stats_snapshot() if self._injector is not None else None
            )
        return snapshot


class ServiceStream:
    """A long-lived streaming connection multiplexed through the service.

    Mirrors the :class:`repro.api.StreamingDecoder` protocol, except every
    method returns a :class:`concurrent.futures.Future` because the operation
    travels through the service's queue and worker pool: ``begin()`` →
    ``Future[None]``, ``push_round(defects)`` → ``Future[Counter]`` (the
    round's operation-count cost), ``finalize()`` → ``Future[DecodeOutcome]``.
    Outcomes are identical to driving a directly-built streaming decoder —
    the service only schedules; it never alters results.
    """

    def __init__(
        self,
        service: DecodeService,
        key: SessionKey,
        *,
        window: int | None = None,
        commit_depth: int | None = None,
    ) -> None:
        self.service = service
        self.key = key
        # Build the graph directly: going through the session LRU would
        # construct (and possibly evict) a full batch session just to read
        # its graph, polluting the cache and its hit/miss statistics.
        self.graph = key.code.build_graph()
        self.decoder = get_streaming_decoder(
            key.decoder,
            self.graph,
            key.config,
            window=window,
            commit_depth=commit_depth,
        )
        self._serial = _SerialExecutor(service._pool)

    def _submit(self, op: str, payload, timeout: float | None = None) -> Future:
        future: Future = Future()
        job = _StreamJob(self, op, payload, future, self.service._clock())
        self.service._enqueue_stream(job, timeout)
        return future

    def begin(self, rounds_hint: int | None = None) -> Future:
        """Open a new stream on the connection's decoder."""
        return self._submit("begin", rounds_hint)

    def push_round(self, defects: Iterable[int]) -> Future:
        """Feed the next measurement round; resolves to its cost ``Counter``."""
        return self._submit("push", tuple(defects))

    def finalize(self) -> Future:
        """Close the stream; resolves to the full :class:`DecodeOutcome`."""
        return self._submit("finalize", None)

    def decode_rounds(
        self, rounds: Iterable[Iterable[int]], timeout: float | None = None
    ) -> DecodeOutcome:
        """Convenience: begin, push every round, finalize, wait for the outcome.

        A failure in ``begin`` or any push is re-raised here — the serial
        executor resolves those futures before ``finalize``'s, so by the time
        the outcome is available every earlier future is done and an outcome
        computed from a partially-failed stream is never returned silently.
        """
        pending = [self.begin()]
        for round_defects in rounds:
            pending.append(self.push_round(round_defects))
        outcome = self.finalize().result(timeout)
        for future in pending:  # all resolved: re-raise the first push error
            future.result(0)
        return outcome
