"""Exact lookup tables over small defect sets (the LUT pre-decoder core).

The table maps a *packed defect bitmask* — ``sum(1 << v for v in defects)``
over real (non-virtual) decoding-graph vertices — onto the complete decode
result the wrapped fallback backend produces for that defect set: its
defect-level matching, its detailed outcome (correction, counters, scale
retries) and nothing else.  Because every entry is obtained by running the
fallback itself at construction time, a lookup hit reproduces the fallback's
answer *bit for bit*; the table is a memoisation layer, never an approximation
(the exactness argument in ``docs/lut.md``).

Table scope follows the pLUTo regime argument (PAPERS.md): at low physical
error rates almost every shot carries zero, one or two defects, so the table
precomputes

* the **zero-defect entry** — always present, the dedicated fast path;
* every **single-defect** syndrome;
* every **two-defect cluster**: pairs at most ``cluster_radius`` decoding-graph
  hops apart (distant pairs are rare and fall through to the fallback).

Construction is deterministic (candidates enumerated in sorted order) and
stops at ``memory_budget_bytes``: the resident-byte estimate of the next
entry would exceed the budget ⇒ the table keeps the deterministic prefix and
records ``truncated=True``.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..api.outcome import DecodeOutcome
from ..graphs.decoding_graph import DecodingGraph
from ..graphs.syndrome import MatchingResult, Syndrome


def pack_defects(defects: Iterable[int]) -> int:
    """Packed bitmask key of a defect set.

    >>> pack_defects(())
    0
    >>> pack_defects((0, 3))
    9
    """
    mask = 0
    for vertex in defects:
        mask |= 1 << vertex
    return mask


def clone_matching(result: MatchingResult) -> MatchingResult:
    """A fresh, independently-mutable copy of a matching result."""
    return MatchingResult(
        pairs=list(result.pairs),
        boundary_vertices=dict(result.boundary_vertices),
        weight=result.weight,
    )


def clone_outcome(outcome: DecodeOutcome) -> DecodeOutcome:
    """A defensive copy of an outcome's decode-determining fields.

    Outcomes are mutable, so both the lookup table and the service outcome
    cache hand out clones: a caller mutating its response can never corrupt
    the stored template.  The clone is a base :class:`DecodeOutcome` carrying
    everything the decode contracts compare — matching (weight, pairing),
    correction, defect count, counters, scale retries.
    """
    return DecodeOutcome(
        result=clone_matching(outcome.result) if outcome.result is not None else None,
        correction=set(outcome.correction) if outcome.correction is not None else None,
        defect_count=outcome.defect_count,
        counters=Counter(outcome.counters),
        scale_retries=outcome.scale_retries,
    )


def outcome_cost_bytes(outcome: DecodeOutcome) -> int:
    """Deterministic resident-size estimate of one stored outcome (bytes).

    An accounting model, not a measurement: stable across Python builds so
    budget-bounded construction is reproducible everywhere.
    """
    cost = 96
    if outcome.result is not None:
        cost += 48 * len(outcome.result.pairs)
        cost += 48 * len(outcome.result.boundary_vertices)
    if outcome.correction is not None:
        cost += 16 * len(outcome.correction)
    cost += 64 * len(outcome.counters)
    return cost


@dataclass(frozen=True)
class LUTEntry:
    """One precomputed decode: the fallback's answers for one defect set."""

    matching: MatchingResult
    outcome: DecodeOutcome
    cost_bytes: int


class LookupTable:
    """Budget-bounded exact decode table built by running the fallback.

    >>> from repro.api import get_decoder
    >>> from repro.graphs import code_capacity_noise, surface_code_decoding_graph
    >>> graph = surface_code_decoding_graph(3, code_capacity_noise(0.05))
    >>> table = LookupTable(graph, get_decoder("union-find", graph))
    >>> table.lookup(()) is not None          # zero-defect fast path
    True
    >>> table.entries >= 1 + graph.num_real_vertices
    True
    """

    def __init__(
        self,
        graph: DecodingGraph,
        fallback,
        *,
        max_defects: int = 2,
        cluster_radius: int = 2,
        memory_budget_bytes: int = 8 << 20,
    ) -> None:
        if max_defects < 0:
            raise ValueError("max_defects must be >= 0")
        if cluster_radius < 1:
            raise ValueError("cluster_radius must be >= 1")
        if memory_budget_bytes < 1:
            raise ValueError("memory_budget_bytes must be >= 1")
        self.graph = graph
        self.max_defects = max_defects
        self.cluster_radius = cluster_radius
        self.memory_budget_bytes = memory_budget_bytes
        self.bytes_resident = 0
        self.truncated = False
        self.candidates = 0
        self._entries: dict[int, LUTEntry] = {}
        self._build(fallback)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _real_vertices(self) -> list[int]:
        graph = self.graph
        return [v for v in range(graph.num_vertices) if not graph.is_virtual(v)]

    def _within_radius(self, start: int) -> list[int]:
        """Real vertices within ``cluster_radius`` hops of ``start`` (BFS)."""
        graph = self.graph
        seen = {start: 0}
        queue = deque([start])
        reachable: list[int] = []
        while queue:
            vertex = queue.popleft()
            hops = seen[vertex]
            if hops >= self.cluster_radius:
                continue
            for _edge, neighbor in graph.adjacency[vertex]:
                if neighbor in seen:
                    continue
                seen[neighbor] = hops + 1
                queue.append(neighbor)
                if not graph.is_virtual(neighbor):
                    reachable.append(neighbor)
        return sorted(reachable)

    def _candidate_defect_sets(self) -> list[tuple[int, ...]]:
        candidates: list[tuple[int, ...]] = [()]
        if self.max_defects < 1:
            return candidates
        real = self._real_vertices()
        candidates.extend((v,) for v in real)
        if self.max_defects < 2:
            return candidates
        for u in real:
            candidates.extend((u, v) for v in self._within_radius(u) if v > u)
        return candidates

    def _build(self, fallback) -> None:
        for defects in self._candidate_defect_sets():
            self.candidates += 1
            syndrome = Syndrome(defects=defects)
            # The fallback itself answers both protocol surfaces once, at
            # construction; hits replay these answers verbatim (cloned).
            matching = fallback.decode(syndrome)
            outcome = fallback.decode_detailed(syndrome)
            cost = 48 + 48 * len(defects) + outcome_cost_bytes(outcome)
            cost += 48 * len(matching.pairs) + 48 * len(matching.boundary_vertices)
            if defects and self.bytes_resident + cost > self.memory_budget_bytes:
                # Deterministic truncation: the table is always the same
                # prefix of the sorted candidate enumeration.  The () entry
                # is exempt — the zero-defect fast path always exists.
                self.truncated = True
                break
            self._entries[pack_defects(defects)] = LUTEntry(
                matching=matching, outcome=outcome, cost_bytes=cost
            )
            self.bytes_resident += cost

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def entries(self) -> int:
        """Number of precomputed defect sets resident in the table."""
        return len(self._entries)

    def lookup(self, defects: Sequence[int]) -> LUTEntry | None:
        """The entry for ``defects``, or ``None`` (⇒ fall back) when absent."""
        if len(defects) > self.max_defects:
            return None
        return self._entries.get(pack_defects(defects))

    def stats(self) -> dict:
        """Plain-dict construction statistics (for benches and snapshots)."""
        return {
            "entries": self.entries,
            "bytes_resident": self.bytes_resident,
            "memory_budget_bytes": self.memory_budget_bytes,
            "truncated": self.truncated,
            "candidates": self.candidates,
        }
