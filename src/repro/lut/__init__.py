"""LUT pre-decode subsystem: table-lookup fast path + outcome cache.

Two layers, both exact by construction (pLUTo's regime argument — see
``docs/lut.md``):

* :class:`LUTDecoder` (:mod:`repro.lut.decoder`) — the ``lut+<fallback>``
  registry family.  A budget-bounded :class:`LookupTable` built at session
  construction resolves zero-, one- and local two-defect syndromes in O(1);
  misses fall through to the wrapped backend unchanged, so ``lut+X`` is
  bit-identical to ``X`` on every shot.
* :class:`OutcomeCache` (:mod:`repro.lut.outcome_cache`) — a
  content-addressed decode-outcome cache mounted in front of the
  :class:`repro.service.DecodeService` micro-batcher, keyed by
  ``content_hash((session key, packed syndrome))``.

Quickstart::

    from repro.api import get_decoder
    decoder = get_decoder("lut+union-find", graph)   # a LUTDecoder
    outcome = decoder.decode_detailed(syndrome)       # hit or fallback
    decoder.stats()["hit_rate"]
"""

from .decoder import LUTDecoder
from .outcome_cache import (
    ENTRY_OVERHEAD_BYTES,
    OutcomeCache,
    OutcomeCacheStats,
    outcome_cache_key,
)
from .table import (
    LookupTable,
    LUTEntry,
    clone_matching,
    clone_outcome,
    outcome_cost_bytes,
    pack_defects,
)

__all__ = [
    "LUTDecoder",
    "LookupTable",
    "LUTEntry",
    "OutcomeCache",
    "OutcomeCacheStats",
    "ENTRY_OVERHEAD_BYTES",
    "outcome_cache_key",
    "pack_defects",
    "clone_matching",
    "clone_outcome",
    "outcome_cost_bytes",
]
