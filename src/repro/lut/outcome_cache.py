"""Content-addressed decode-outcome cache for the decode service.

The cache memoises *complete decode outcomes* keyed by
:func:`repro.api.hashing.content_hash` over ``(session key, packed
syndrome)``.  Two requests collide exactly when they would run the same
decoder build (same code, decoder, config hash — the session key) on the same
defect set, in which case decoding is deterministic and replaying the stored
outcome is exact.  :class:`repro.service.DecodeService` consults the cache in
``submit`` — hits resolve the response future immediately and never occupy a
micro-batch slot.

The cache is byte-budgeted (LRU eviction, same deterministic cost model as
the lookup table) and thread-safe; all mutation happens under one lock.
Outcomes are cloned on both ``put`` and ``get`` so callers can never mutate a
resident entry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..api.hashing import content_hash
from ..api.outcome import DecodeOutcome
from ..graphs.syndrome import Syndrome
from .table import clone_outcome, outcome_cost_bytes

#: Fixed per-entry overhead estimate (key string + OrderedDict node), bytes.
ENTRY_OVERHEAD_BYTES = 128


@dataclass
class OutcomeCacheStats:
    """Monotonic counters of one cache's lifetime (hits, misses, evictions)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def outcome_cache_key(session_key: str, syndrome: Syndrome) -> str:
    """Content-addressed cache key of one decode request.

    The defect set joins the hash, plus — only when present — the heralded
    ``erasures`` (erasures reweight the graph, so equal defect sets with
    different erasure patterns decode differently; the conditional field
    keeps erasure-free keys byte-identical to earlier releases).
    ``error_edges``/``logical_flip`` stay out: they are ground-truth metadata
    carried for evaluation, invisible to the decoder.

    >>> from repro.graphs.syndrome import Syndrome
    >>> key = outcome_cache_key("d=3/decoder=union-find", Syndrome(defects=(1, 4)))
    >>> len(key)
    16
    >>> erased = Syndrome(defects=(1, 4), erasures=(7,))
    >>> outcome_cache_key("d=3/decoder=union-find", erased) != key
    True
    """
    payload = {"session": session_key, "defects": list(syndrome.defects)}
    if syndrome.erasures:
        payload["erasures"] = list(syndrome.erasures)
    return content_hash(payload)


class OutcomeCache:
    """Thread-safe, byte-budgeted LRU of decode outcomes.

    >>> from collections import Counter
    >>> cache = OutcomeCache(max_bytes=1 << 16)
    >>> outcome = DecodeOutcome(correction=set(), defect_count=0, counters=Counter())
    >>> cache.put("k", outcome)
    >>> cache.get("k") is outcome    # clone, not the stored object
    False
    >>> cache.get("k").defect_count
    0
    >>> cache.stats.hits, cache.stats.misses
    (2, 0)
    """

    def __init__(self, max_bytes: int) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_bytes = max_bytes
        self.stats = OutcomeCacheStats()
        self.bytes_resident = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[DecodeOutcome, int]] = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> DecodeOutcome | None:
        """The cached outcome for ``key`` (cloned), or ``None`` on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return clone_outcome(entry[0])

    def put(self, key: str, outcome: DecodeOutcome) -> None:
        """Store a clone of ``outcome``, evicting LRU entries over budget."""
        cost = ENTRY_OVERHEAD_BYTES + outcome_cost_bytes(outcome)
        if cost > self.max_bytes:
            return
        with self._lock:
            stale = self._entries.pop(key, None)
            if stale is not None:
                self.bytes_resident -= stale[1]
            while self._entries and self.bytes_resident + cost > self.max_bytes:
                _, (_, evicted_cost) = self._entries.popitem(last=False)
                self.bytes_resident -= evicted_cost
                self.stats.evictions += 1
            self._entries[key] = (clone_outcome(outcome), cost)
            self.bytes_resident += cost

    def clear(self) -> None:
        """Drop every entry (statistics are preserved)."""
        with self._lock:
            self._entries.clear()
            self.bytes_resident = 0

    def stats_snapshot(self) -> dict:
        """Plain-dict snapshot for service stats and ``BENCH_service.json``."""
        with self._lock:
            return {
                "enabled": True,
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "evictions": self.stats.evictions,
                "hit_rate": self.stats.hit_rate,
                "entries": len(self._entries),
                "bytes_resident": self.bytes_resident,
                "max_bytes": self.max_bytes,
            }
