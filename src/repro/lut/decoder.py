"""The ``lut+<fallback>`` pre-decoder: exact table hits, transparent misses.

:class:`LUTDecoder` wraps any registered backend behind the same
:class:`~repro.api.protocol.Decoder` surface.  Each decode first consults the
precomputed :class:`~repro.lut.table.LookupTable`; a hit replays the
fallback's own stored answer (cloned — results are mutable), a miss hands the
syndrome to the wrapped backend unchanged.  Either way the caller observes
exactly what the fallback would have produced, which is what
``tests/conformance/`` pins across every backend × noise family.

Outcome counters carry ``lut_hit`` / ``lut_miss`` / ``lut_zero_defect_hit``
markers so the Monte-Carlo engine's per-shard counter aggregation surfaces
hit rates without any extra plumbing (see :mod:`repro.sweeps.runner`).

The streaming protocol (``begin`` / ``push_round`` / ``finalize``) delegates
straight to the fallback: rounds arrive incrementally, so there is no packed
defect set to look up until the instance is already decoded.  Streamed shots
therefore never touch the table — and never diverge from the fallback.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from ..api.config import DEFAULT_LUT_BUDGET_BYTES, DecoderConfig
from ..api.outcome import DecodeOutcome
from ..graphs.decoding_graph import DecodingGraph
from ..graphs.syndrome import MatchingResult, Syndrome
from .table import LookupTable, clone_matching, clone_outcome


class LUTDecoder:
    """Table-lookup pre-decoder over a wrapped fallback backend.

    >>> from repro.graphs import code_capacity_noise, surface_code_decoding_graph
    >>> graph = surface_code_decoding_graph(3, code_capacity_noise(0.05))
    >>> decoder = LUTDecoder(graph, "union-find")
    >>> decoder.name
    'lut+union-find'
    >>> outcome = decoder.decode_detailed(Syndrome(defects=()))
    >>> (decoder.zero_defect_hits, outcome.counters["lut_zero_defect_hit"])
    (1, 1)
    """

    def __init__(
        self,
        graph: DecodingGraph,
        fallback: str = "micro-blossom",
        *,
        max_defects: int = 2,
        cluster_radius: int = 2,
        memory_budget_bytes: int = DEFAULT_LUT_BUDGET_BYTES,
        fallback_config: DecoderConfig | None = None,
    ) -> None:
        # Late import: repro.api.registry builds LUTDecoder through a lazy
        # factory, so importing the registry at module scope here would be
        # circular during ``import repro.api``.
        from ..api.registry import decoder_spec

        spec = decoder_spec(fallback)
        if fallback_config is None:
            fallback_config = spec.make_config()
        self.graph = graph
        self.name = f"lut+{fallback}"
        self.fallback_name = fallback
        self.fallback_config = fallback_config
        self.fallback = spec.factory(graph, fallback_config)
        self.table = LookupTable(
            graph,
            self.fallback,
            max_defects=max_defects,
            cluster_radius=cluster_radius,
            memory_budget_bytes=memory_budget_bytes,
        )
        self.hits = 0
        self.misses = 0
        self.zero_defect_hits = 0

    # ------------------------------------------------------------------
    # batch decode protocol
    # ------------------------------------------------------------------
    def decode(self, syndrome: Syndrome) -> MatchingResult:
        # Heralded erasures reweight the graph per shot; the table stores
        # base-graph answers, so erased syndromes always take the fallback
        # (which is erasure-aware — it was built through the registry's
        # wrapped factory).
        entry = None if syndrome.erasures else self.table.lookup(syndrome.defects)
        if entry is None:
            self.misses += 1
            return self.fallback.decode(syndrome)
        self._count_hit(syndrome)
        return clone_matching(entry.matching)

    def decode_detailed(self, syndrome: Syndrome) -> DecodeOutcome:
        entry = None if syndrome.erasures else self.table.lookup(syndrome.defects)
        if entry is None:
            self.misses += 1
            outcome = self.fallback.decode_detailed(syndrome)
            outcome.counters["lut_miss"] += 1
            return outcome
        self._count_hit(syndrome)
        outcome = clone_outcome(entry.outcome)
        outcome.counters["lut_hit"] += 1
        if not syndrome.defects:
            outcome.counters["lut_zero_defect_hit"] += 1
        return outcome

    def decode_to_correction(self, syndrome: Syndrome) -> set[int]:
        return self.decode_detailed(syndrome).correction_edges(self.graph)

    def _count_hit(self, syndrome: Syndrome) -> None:
        self.hits += 1
        if not syndrome.defects:
            self.zero_defect_hits += 1

    # ------------------------------------------------------------------
    # streaming protocol (pure delegation — see module docstring)
    # ------------------------------------------------------------------
    def begin(
        self,
        graph: DecodingGraph | None = None,
        rounds_hint: int | None = None,
        erasures: Iterable[int] = (),
    ) -> None:
        self.fallback.begin(graph, rounds_hint, erasures=erasures)

    def push_round(self, defects: Iterable[int]) -> Counter:
        return self.fallback.push_round(defects)

    def finalize(self) -> DecodeOutcome:
        return self.fallback.finalize()

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear hit/miss statistics and reset the wrapped backend."""
        self.hits = 0
        self.misses = 0
        self.zero_defect_hits = 0
        fallback_reset = getattr(self.fallback, "reset", None)
        if callable(fallback_reset):
            fallback_reset()

    @property
    def hit_rate(self) -> float:
        """Fraction of (batch) decodes resolved by the table."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Plain-dict lookup statistics plus the table's construction stats."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "zero_defect_hits": self.zero_defect_hits,
            "hit_rate": self.hit_rate,
            "table": self.table.stats(),
        }
