"""Declarative sweep specifications.

A :class:`SweepSpec` names the axes of the paper's evaluation grid — code
distance, noise family, physical error rate, decoder — plus the statistical
budget (shots, optional target standard error) and expands into an ordered
list of :class:`SweepPoint`\\ s.  Expansion is *seed-stable*: every point
derives its Monte-Carlo seed from the spec's base seed and the point's
parameter key through SHA-256, so

* the same spec always expands to the same points with the same seeds,
* reordering or extending an axis never changes the seed of an existing
  point (points are keyed by their parameters, not their position), and
* two points of one sweep never share an RNG stream.

The spec's :meth:`~SweepSpec.spec_hash` covers exactly the fields that
determine results (axes, shots, seed, shard size, early-stopping target,
latency collection) — *not* the display ``name`` — so renaming a sweep does
not invalidate its cached results in a :class:`~repro.sweeps.store.ResultStore`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Sequence

from ..api.hashing import content_hash, stable_seed

#: Fields of :class:`SweepSpec` that determine Monte-Carlo results and hence
#: participate in :meth:`SweepSpec.spec_hash`.  The ``streaming`` axis joins
#: the hash payload only when it departs from the batch-only default, so
#: stores written before the axis existed keep their cache hits.
_HASHED_FIELDS = (
    "distances",
    "noise_models",
    "physical_error_rates",
    "decoders",
    "shots",
    "seed",
    "shard_size",
    "target_standard_error",
    "collect_latency",
)


def derive_point_seed(base_seed: int, key: str) -> int:
    """Seed of the point with parameter ``key`` in a sweep seeded ``base_seed``.

    A 63-bit integer derived via SHA-256
    (:func:`repro.api.hashing.stable_seed` — the same primitive the decode
    service's trace generator uses), stable across processes and Python
    versions (unlike the builtin ``hash``).

    >>> derive_point_seed(0, "d=3/decoder=union-find") < 2**63
    True
    >>> derive_point_seed(0, "a") != derive_point_seed(1, "a")
    True
    """
    return stable_seed(base_seed, key)


@dataclass(frozen=True)
class SweepPoint:
    """One fully-specified cell of a sweep grid.

    Carries everything the runner needs to reproduce the point bit-for-bit:
    graph parameters, decoder name, statistical budget and the derived seed.
    """

    distance: int
    noise: str
    physical_error_rate: float
    decoder: str
    shots: int
    seed: int
    shard_size: int
    target_standard_error: float | None = None
    collect_latency: bool = False
    #: Decode this point on the continuous-stream engine (reaction latency)
    #: instead of the batch Monte-Carlo engine.
    streaming: bool = False

    @property
    def key(self) -> str:
        """Canonical parameter key (also the cache key inside a store).

        Streaming points carry a ``/stream=1`` suffix; batch points keep the
        pre-axis key so existing stores stay addressable.
        """
        target = (
            repr(float(self.target_standard_error))
            if self.target_standard_error is not None
            else "none"
        )
        return (
            f"d={self.distance}"
            f"/noise={self.noise}"
            f"/p={float(self.physical_error_rate)!r}"
            f"/decoder={self.decoder}"
            f"/shots={self.shots}"
            f"/seed={self.seed}"
            f"/shard={self.shard_size}"
            f"/target_se={target}"
            f"/latency={int(self.collect_latency)}"
            + ("/stream=1" if self.streaming else "")
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SweepPoint":
        return cls(
            distance=int(data["distance"]),
            noise=str(data["noise"]),
            physical_error_rate=float(data["physical_error_rate"]),
            decoder=str(data["decoder"]),
            shots=int(data["shots"]),
            seed=int(data["seed"]),
            shard_size=int(data["shard_size"]),
            target_standard_error=(
                None
                if data.get("target_standard_error") is None
                else float(data["target_standard_error"])
            ),
            collect_latency=bool(data.get("collect_latency", False)),
            streaming=bool(data.get("streaming", False)),
        )


@dataclass(frozen=True)
class SweepSpec:
    """Declarative grid of (distance × noise × p × decoder × streaming) points."""

    name: str
    distances: tuple[int, ...]
    physical_error_rates: tuple[float, ...]
    decoders: tuple[str, ...]
    shots: int
    noise_models: tuple[str, ...] = ("circuit_level",)
    seed: int = 0
    shard_size: int = 256
    target_standard_error: float | None = None
    collect_latency: bool = field(default=False)
    #: Decode-mode axis: ``False`` runs a point on the batch Monte-Carlo
    #: engine, ``True`` on the continuous-stream engine (reaction-latency
    #: percentiles).  ``(False, True)`` evaluates every cell both ways on the
    #: same seeds, a bare bool is accepted as a one-value axis.
    streaming: tuple[bool, ...] = (False,)

    def __post_init__(self) -> None:
        object.__setattr__(self, "distances", tuple(int(d) for d in self.distances))
        object.__setattr__(
            self,
            "physical_error_rates",
            tuple(float(p) for p in self.physical_error_rates),
        )
        object.__setattr__(self, "decoders", tuple(str(d) for d in self.decoders))
        object.__setattr__(
            self, "noise_models", tuple(str(n) for n in self.noise_models)
        )
        streaming = self.streaming
        if isinstance(streaming, bool):
            streaming = (streaming,)
        object.__setattr__(self, "streaming", tuple(bool(s) for s in streaming))
        if not self.name:
            raise ValueError("sweep needs a non-empty name")
        for axis in (
            "distances",
            "physical_error_rates",
            "decoders",
            "noise_models",
            "streaming",
        ):
            if not getattr(self, axis):
                raise ValueError(f"sweep axis {axis!r} must be non-empty")
        if len(set(self.streaming)) != len(self.streaming):
            raise ValueError("streaming axis must not repeat a mode")
        if any(d < 3 or d % 2 == 0 for d in self.distances):
            raise ValueError("distances must be odd and >= 3")
        if any(not 0.0 < p < 1.0 for p in self.physical_error_rates):
            raise ValueError("physical error rates must lie in (0, 1)")
        if self.shots < 1:
            raise ValueError("shots must be >= 1")
        if self.shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if self.target_standard_error is not None and self.target_standard_error <= 0:
            raise ValueError("target_standard_error must be positive")

    # ------------------------------------------------------------------
    # expansion
    # ------------------------------------------------------------------
    def expand(self) -> list[SweepPoint]:
        """All points of the grid, in deterministic axis order.

        Order: distance (outer) → noise model → physical error rate →
        decoder → streaming mode (inner); each point's seed is derived from
        its parameters, never from its position.  The seed deliberately does
        *not* cover the streaming mode: the batch and stream points of one
        cell decode the same shard-seeded syndromes, so their error counts
        are directly comparable (streamed decoding is exactness-preserving).
        """
        points: list[SweepPoint] = []
        for distance in self.distances:
            for noise in self.noise_models:
                for physical in self.physical_error_rates:
                    for decoder in self.decoders:
                        partial_key = (
                            f"d={distance}/noise={noise}"
                            f"/p={float(physical)!r}/decoder={decoder}"
                        )
                        for streaming in self.streaming:
                            points.append(
                                SweepPoint(
                                    distance=distance,
                                    noise=noise,
                                    physical_error_rate=physical,
                                    decoder=decoder,
                                    shots=self.shots,
                                    seed=derive_point_seed(self.seed, partial_key),
                                    shard_size=self.shard_size,
                                    target_standard_error=self.target_standard_error,
                                    collect_latency=self.collect_latency,
                                    streaming=streaming,
                                )
                            )
        return points

    # ------------------------------------------------------------------
    # hashing / serialization
    # ------------------------------------------------------------------
    def spec_hash(self) -> str:
        """16-hex-digit content hash of the result-determining fields.

        Built on :func:`repro.api.hashing.content_hash`, the canonical
        hashing primitive shared with the decode service's session keys and
        trace fingerprints.

        >>> spec = SweepSpec("a", (3,), (0.01,), ("union-find",), shots=10)
        >>> spec.spec_hash() == spec.spec_hash()
        True
        >>> len(spec.spec_hash())
        16
        """
        payload = {name: getattr(self, name) for name in _HASHED_FIELDS}
        if self.streaming != (False,):
            # Batch-only specs hash exactly as before the axis existed, so
            # pre-axis stores keep serving cache hits.
            payload["streaming"] = self.streaming
        return content_hash(payload)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        return cls(
            name=str(data["name"]),
            distances=tuple(data["distances"]),
            physical_error_rates=tuple(data["physical_error_rates"]),
            decoders=tuple(data["decoders"]),
            shots=int(data["shots"]),
            noise_models=tuple(data.get("noise_models", ("circuit_level",))),
            seed=int(data.get("seed", 0)),
            shard_size=int(data.get("shard_size", 256)),
            target_standard_error=(
                None
                if data.get("target_standard_error") is None
                else float(data["target_standard_error"])
            ),
            collect_latency=bool(data.get("collect_latency", False)),
            # a bare bool is accepted and coerced to a one-value axis
            streaming=data.get("streaming", (False,)),
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "SweepSpec":
        """Load a spec from a JSON file (the CLI's ``--spec`` input)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def make_spec(
    name: str,
    distances: Sequence[int],
    physical_error_rates: Sequence[float],
    decoders: Sequence[str],
    shots: int,
    **kwargs,
) -> SweepSpec:
    """Convenience constructor accepting any sequences for the axes."""
    return SweepSpec(
        name=name,
        distances=tuple(distances),
        physical_error_rates=tuple(physical_error_rates),
        decoders=tuple(decoders),
        shots=shots,
        **kwargs,
    )


#: Pinned spec of the CI ``perf-trajectory`` job (``repro sweep run --smoke``).
#: Small enough for a pull-request gate, large enough that every decoder sees
#: logical errors at these above-threshold error rates, with latency
#: histograms enabled so `BENCH_sweep.json` carries timing trajectories.  The
#: ``streaming`` axis runs every cell both batch and streamed, so the
#: trajectory also records stream reaction-latency percentiles per commit.
SMOKE_SPEC = SweepSpec(
    name="ci-smoke",
    distances=(3, 5),
    physical_error_rates=(0.02, 0.03),
    decoders=("micro-blossom", "union-find"),
    shots=128,
    noise_models=("circuit_level",),
    seed=2026,
    shard_size=64,
    collect_latency=True,
    streaming=(False, True),
)
