"""``BENCH_sweep.json`` — the machine-readable performance trajectory.

CI's ``perf-trajectory`` job runs the pinned smoke sweep on every push and
publishes one JSON document per commit: logical error rate ± SE per point
(zero-failure points as rule-of-three upper bounds), decode throughput in
shots/sec, and latency-histogram summaries.  Consecutive artifacts form the
repo's performance trajectory — a regression on a hot path shows up as a
drop in ``shots_per_second`` (or a shift in ``latency.p99_us``) between two
commits at identical, seed-pinned work.

:func:`validate_bench` is the schema gate; the CLI's ``sweep export-bench``
validates before writing and CI fails on any violation.
"""

from __future__ import annotations

import json
import os
import subprocess
from datetime import datetime, timezone
from pathlib import Path

from ..evaluation.scaling import fit_logical_error_scaling
from .fits import scaling_points
from .runner import SweepRunResult
from .store import PointResult

#: Version of the BENCH document layout; bump on breaking changes.
#: v2: points gained a required ``streaming`` flag (stream reaction-latency
#: points live next to batch decode-latency points).
#: v3: points gained a required ``lut`` block (null for base decoders):
#: table hit/miss/zero-defect counts, the hit rate, and the measured
#: speedup of ``lut+X`` over the matching ``X`` point of the same sweep
#: (null when the sweep ran no matching fallback point).
BENCH_SCHEMA_VERSION = 3


class BenchSchemaError(ValueError):
    """Raised when a BENCH document violates the published schema."""


def current_commit() -> str:
    """The commit the benchmark ran at: ``$GITHUB_SHA``, git, or ``unknown``."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return "unknown"
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else "unknown"


def _fallback_throughputs(results: list[PointResult]) -> dict[tuple, float]:
    """Index base-decoder points by their (cell, decoder) for speedup pairing."""
    index: dict[tuple, float] = {}
    for result in results:
        point = result.point
        if point.decoder.startswith("lut+"):
            continue
        cell = (
            point.distance,
            point.noise,
            point.physical_error_rate,
            point.streaming,
            point.decoder,
        )
        index[cell] = result.shots_per_second
    return index


def _lut_entry(result: PointResult, fallback_sps: dict[tuple, float]) -> dict | None:
    """The per-point ``lut`` block: hit stats + measured speedup-vs-fallback.

    ``speedup_vs_fallback`` compares the lut point's shots/sec against the
    same sweep's matching base-decoder point (same distance, noise, error
    rate, streaming flag) — null when the sweep ran no such point or either
    throughput is unusable.  The two points decode different seed-derived
    syndromes (the decoder name joins the seed derivation), which is exactly
    right for a throughput ratio: same workload distribution, not same shots.
    """
    if result.lut is None:
        return None
    point = result.point
    cell = (
        point.distance,
        point.noise,
        point.physical_error_rate,
        point.streaming,
        point.decoder[len("lut+"):],
    )
    base_sps = fallback_sps.get(cell, 0.0)
    speedup = None
    if base_sps > 0.0 and result.shots_per_second > 0.0:
        speedup = result.shots_per_second / base_sps
    return {
        **result.lut.to_dict(),
        "hit_rate": result.lut.hit_rate,
        "speedup_vs_fallback": speedup,
    }


def _point_entry(result: PointResult, fallback_sps: dict[tuple, float]) -> dict:
    point = result.point
    latency = None
    if result.latency is not None:
        latency = {
            "count": result.latency.count,
            "mean_us": result.latency.mean_seconds * 1e6,
            "p50_us": result.latency.p50_seconds * 1e6,
            "p99_us": result.latency.p99_seconds * 1e6,
            "min_us": result.latency.min_seconds * 1e6,
            "max_us": result.latency.max_seconds * 1e6,
        }
    return {
        "distance": point.distance,
        "noise": point.noise,
        "physical_error_rate": point.physical_error_rate,
        "decoder": point.decoder,
        # Streaming points report reaction-latency percentiles (time left
        # after the final measurement round) instead of decode latency.
        "streaming": point.streaming,
        "seed": point.seed,
        "shots": result.shots,
        "errors": result.errors,
        "logical_error_rate": result.rate,
        "standard_error": result.standard_error,
        "error_rate_upper_bound": result.upper_bound,
        "zero_failures": result.zero_failures,
        "stopped_early": result.stopped_early,
        "shots_per_second": result.shots_per_second,
        "elapsed_seconds": result.elapsed_seconds,
        "latency": latency,
        "lut": _lut_entry(result, fallback_sps),
    }


def bench_document(
    run: SweepRunResult,
    *,
    commit: str | None = None,
    timestamp: str | None = None,
) -> dict:
    """Build the BENCH document for one sweep run (validated by the caller)."""
    spec = run.spec
    fallback_sps = _fallback_throughputs(run.results)
    fits: dict[str, dict | None] = {}
    for noise in spec.noise_models:
        for decoder in spec.decoders:
            slice_key = f"{noise}/{decoder}"
            usable = scaling_points(run.results, noise=noise, decoder=decoder)
            try:
                scaling = fit_logical_error_scaling(usable)
                fits[slice_key] = {
                    "amplitude": scaling.amplitude,
                    "threshold": scaling.threshold,
                    "points_used": len(usable),
                }
            except ValueError:
                fits[slice_key] = None
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "commit": commit if commit is not None else current_commit(),
        "timestamp": timestamp
        if timestamp is not None
        else datetime.now(timezone.utc).isoformat(),
        "spec": {"hash": run.spec_hash, **spec.to_dict()},
        "points": [
            _point_entry(result, fallback_sps) for result in run.results
        ],
        "fits": fits,
    }


# ---------------------------------------------------------------------------
# schema validation
# ---------------------------------------------------------------------------
def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BenchSchemaError(message)


def _check_number(value, path: str, low: float | None = None, high: float | None = None):
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{path}: expected a number, got {type(value).__name__}",
    )
    if low is not None:
        _require(value >= low, f"{path}: {value} < {low}")
    if high is not None:
        _require(value <= high, f"{path}: {value} > {high}")


_LATENCY_KEYS = ("count", "mean_us", "p50_us", "p99_us", "min_us", "max_us")
_POINT_REQUIRED = (
    "distance",
    "noise",
    "physical_error_rate",
    "decoder",
    "streaming",
    "seed",
    "shots",
    "errors",
    "logical_error_rate",
    "standard_error",
    "error_rate_upper_bound",
    "zero_failures",
    "stopped_early",
    "shots_per_second",
    "elapsed_seconds",
    "latency",
    "lut",
)


def validate_bench(document: dict) -> None:
    """Validate a BENCH document; raises :class:`BenchSchemaError` on violation.

    >>> validate_bench({"schema_version": 3})
    Traceback (most recent call last):
        ...
    repro.sweeps.bench.BenchSchemaError: missing top-level key 'commit'
    """
    _require(isinstance(document, dict), "document must be a JSON object")
    for key in ("schema_version", "commit", "timestamp", "spec", "points", "fits"):
        _require(key in document, f"missing top-level key {key!r}")
    _require(
        document["schema_version"] == BENCH_SCHEMA_VERSION,
        f"schema_version {document['schema_version']!r} != {BENCH_SCHEMA_VERSION}",
    )
    _require(
        isinstance(document["commit"], str) and document["commit"],
        "commit must be a non-empty string",
    )
    _require(
        isinstance(document["timestamp"], str) and document["timestamp"],
        "timestamp must be a non-empty string",
    )
    spec = document["spec"]
    _require(isinstance(spec, dict), "spec must be an object")
    for key in ("hash", "name", "distances", "physical_error_rates", "decoders", "shots"):
        _require(key in spec, f"spec: missing key {key!r}")
    points = document["points"]
    _require(isinstance(points, list) and points, "points must be a non-empty array")
    for index, point in enumerate(points):
        path = f"points[{index}]"
        _require(isinstance(point, dict), f"{path}: expected an object")
        for key in _POINT_REQUIRED:
            _require(key in point, f"{path}: missing key {key!r}")
        _check_number(point["distance"], f"{path}.distance", low=3)
        _require(isinstance(point["noise"], str), f"{path}.noise must be a string")
        _require(isinstance(point["decoder"], str), f"{path}.decoder must be a string")
        _require(
            isinstance(point["streaming"], bool),
            f"{path}.streaming must be a boolean",
        )
        _check_number(
            point["physical_error_rate"], f"{path}.physical_error_rate", 0.0, 1.0
        )
        _check_number(point["seed"], f"{path}.seed", low=0)
        _check_number(point["shots"], f"{path}.shots", low=1)
        _check_number(point["errors"], f"{path}.errors", 0, point["shots"])
        _check_number(point["logical_error_rate"], f"{path}.logical_error_rate", 0.0, 1.0)
        _check_number(point["standard_error"], f"{path}.standard_error", low=0.0)
        _check_number(
            point["error_rate_upper_bound"], f"{path}.error_rate_upper_bound", 0.0, 1.0
        )
        _require(
            isinstance(point["zero_failures"], bool),
            f"{path}.zero_failures must be a boolean",
        )
        _require(
            point["zero_failures"] == (point["errors"] == 0),
            f"{path}.zero_failures inconsistent with errors",
        )
        _require(
            not point["zero_failures"] or point["error_rate_upper_bound"] > 0,
            f"{path}: zero-failure point must carry a positive upper bound",
        )
        _require(
            isinstance(point["stopped_early"], bool),
            f"{path}.stopped_early must be a boolean",
        )
        _check_number(point["shots_per_second"], f"{path}.shots_per_second", low=0.0)
        _check_number(point["elapsed_seconds"], f"{path}.elapsed_seconds", low=0.0)
        latency = point["latency"]
        if latency is not None:
            _require(isinstance(latency, dict), f"{path}.latency must be object|null")
            for key in _LATENCY_KEYS:
                _require(key in latency, f"{path}.latency: missing key {key!r}")
                _check_number(latency[key], f"{path}.latency.{key}", low=0.0)
        lut = point["lut"]
        if lut is None:
            _require(
                not (point["decoder"].startswith("lut+") and not point["streaming"]),
                f"{path}: batch lut+ point must carry a lut block",
            )
        else:
            _require(isinstance(lut, dict), f"{path}.lut must be object|null")
            _require(
                point["decoder"].startswith("lut+"),
                f"{path}: lut block on a non-lut decoder",
            )
            for key in ("hits", "misses", "zero_defect_hits"):
                _require(key in lut, f"{path}.lut: missing key {key!r}")
                _check_number(lut[key], f"{path}.lut.{key}", low=0)
            _require("hit_rate" in lut, f"{path}.lut: missing key 'hit_rate'")
            _check_number(lut["hit_rate"], f"{path}.lut.hit_rate", 0.0, 1.0)
            _require(
                "speedup_vs_fallback" in lut,
                f"{path}.lut: missing key 'speedup_vs_fallback'",
            )
            if lut["speedup_vs_fallback"] is not None:
                _check_number(
                    lut["speedup_vs_fallback"],
                    f"{path}.lut.speedup_vs_fallback",
                    low=0.0,
                )
    fits = document["fits"]
    _require(isinstance(fits, dict), "fits must be an object")
    for slice_key, fit in fits.items():
        if fit is None:
            continue
        path = f"fits[{slice_key!r}]"
        _require(isinstance(fit, dict), f"{path}: expected object|null")
        for key in ("amplitude", "threshold", "points_used"):
            _require(key in fit, f"{path}: missing key {key!r}")
        _check_number(fit["amplitude"], f"{path}.amplitude", low=0.0)
        _check_number(fit["threshold"], f"{path}.threshold", 0.0, 1.0)
        _check_number(fit["points_used"], f"{path}.points_used", low=2)


def write_bench(document: dict, path: str | Path) -> Path:
    """Validate and write the BENCH document (atomic via temp + rename)."""
    validate_bench(document)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.with_suffix(path.suffix + ".tmp")
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    tmp_path.replace(path)
    return path
