"""Resumable execution of a :class:`~repro.sweeps.spec.SweepSpec`.

``run_sweep`` walks the spec's expansion in order; a point already present in
the :class:`~repro.sweeps.store.ResultStore` is returned as a cache hit
without re-running, everything else runs on the sharded
:class:`~repro.evaluation.engine.MonteCarloEngine` and is appended to the
store the moment it completes.  Interrupting a sweep at any point boundary
therefore loses at most the point in flight, and a subsequent run (or
``repro sweep resume``) continues exactly where it stopped: because every
point's seed is a pure function of the spec seed and the point's parameters,
and the engine's results are independent of the worker count, the resumed
store is bit-identical to an uninterrupted run (see
``ResultStore.fingerprint``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from ..api.registry import decoder_spec
from ..evaluation.engine import (
    DECODERS_WITH_TIMING_MODELS,
    EngineResult,
    MonteCarloEngine,
    modelled_latency_fn,
    modelled_trivial_latency_seconds,
)
from ..evaluation.stream import StreamEngine
from ..graphs.decoding_graph import DecodingGraph
from ..graphs.noise import noise_model_by_name
from ..graphs.surface_code import surface_code_decoding_graph
from .spec import SweepPoint, SweepSpec
from .store import LatencySummary, LUTStats, PointResult, ResultStore

#: Called after every completed (or cache-hit) point; raising from the
#: callback aborts the sweep at a point boundary — the store stays valid.
ProgressFn = Callable[[SweepPoint, PointResult], None]


@dataclass
class SweepRunResult:
    """Outcome of one ``run_sweep`` invocation."""

    spec: SweepSpec
    spec_hash: str
    results: list[PointResult] = field(default_factory=list)

    @property
    def completed(self) -> int:
        """Points actually run by this invocation."""
        return sum(1 for result in self.results if not result.cached)

    @property
    def cached(self) -> int:
        """Points served from the store without re-running."""
        return sum(1 for result in self.results if result.cached)


def build_point_graph(point: SweepPoint) -> DecodingGraph:
    """The decoding graph of one sweep point."""
    model = noise_model_by_name(point.noise, point.physical_error_rate)
    return surface_code_decoding_graph(point.distance, model)


def _lut_stats(point: SweepPoint, engine_result: EngineResult) -> LUTStats | None:
    """LUT hit/miss stats of a ``lut+<fallback>`` point (``None`` otherwise).

    The decoders mark every decoded shot's outcome counters with ``lut_hit``
    or ``lut_miss`` (:mod:`repro.lut.decoder`), which the engine aggregates
    across shards and worker processes; zero-defect shots are never decoded
    at all (the engine tallies them without calling the decoder), and the
    table answers exactly those in O(1) — its zero-defect fast path — so
    they are counted as ``zero_defect_hits``.
    """
    if not point.decoder.startswith("lut+"):
        return None
    counters = engine_result.counters
    return LUTStats(
        hits=int(counters.get("lut_hit", 0)),
        misses=int(counters.get("lut_miss", 0)),
        zero_defect_hits=engine_result.shots - engine_result.decoded_shots,
    )


def _point_result(
    point: SweepPoint, engine_result: EngineResult, elapsed_seconds: float
) -> PointResult:
    histogram = engine_result.histogram
    return PointResult(
        point=point,
        shots=engine_result.shots,
        errors=engine_result.errors,
        decoded_shots=engine_result.decoded_shots,
        defects=engine_result.defects,
        stopped_early=engine_result.stopped_early,
        latency=LatencySummary.from_histogram(histogram) if histogram else None,
        lut=_lut_stats(point, engine_result),
        erased=engine_result.erased,
        elapsed_seconds=elapsed_seconds,
    )


def run_point(
    point: SweepPoint,
    *,
    workers: int = 1,
    clock: Callable[[], float] = time.perf_counter,
) -> PointResult:
    """Run one sweep point (no store involved).

    Batch points run on the Monte-Carlo engine; streaming points run on the
    continuous-stream engine with the *same* shard seeds, so the two modes of
    one cell decode identical syndromes and their latency column reports
    modelled decode latency vs stream reaction latency respectively.
    """
    graph = build_point_graph(point)
    if point.streaming:
        stream_engine = StreamEngine(
            graph, point.decoder, shard_size=point.shard_size, workers=workers
        )
        started = clock()
        stream_result = stream_engine.run(point.shots, seed=point.seed)
        return PointResult(
            point=point,
            shots=stream_result.shots,
            errors=stream_result.errors,
            decoded_shots=stream_result.shots,
            defects=stream_result.defects,
            stopped_early=False,
            latency=LatencySummary.from_histogram(stream_result.reaction),
            elapsed_seconds=clock() - started,
        )
    latency_fn = None
    trivial_latency = None
    if point.collect_latency:
        latency_fn = modelled_latency_fn(point.decoder, graph)
        trivial_latency = modelled_trivial_latency_seconds(point.decoder, graph)
    engine = MonteCarloEngine(
        graph,
        point.decoder,
        shard_size=point.shard_size,
        workers=workers,
        latency_fn=latency_fn,
        trivial_latency_seconds=trivial_latency,
    )
    started = clock()
    engine_result = engine.run(
        point.shots,
        seed=point.seed,
        target_standard_error=point.target_standard_error,
    )
    return _point_result(point, engine_result, clock() - started)


def validate_spec_axes(spec: SweepSpec) -> None:
    """Fail fast on unknown decoder or noise-model names (before any run)."""
    for decoder in spec.decoders:
        decoder_spec(decoder)
    for noise in spec.noise_models:
        noise_model_by_name(noise, 0.001)
    if spec.collect_latency or any(spec.streaming):
        for decoder in spec.decoders:
            _require_latency_model(decoder)
    if any(spec.streaming) and spec.target_standard_error is not None:
        raise ValueError(
            "early stopping (target_standard_error) is not supported for "
            "streaming sweep points"
        )


def _require_latency_model(decoder: str) -> None:
    if decoder not in DECODERS_WITH_TIMING_MODELS:
        raise ValueError(
            f"decoder {decoder!r} has no published timing model; "
            "disable collect_latency or drop it from the sweep"
        )


def run_sweep(
    spec: SweepSpec,
    store: ResultStore | None = None,
    *,
    workers: int = 1,
    progress: ProgressFn | None = None,
    clock: Callable[[], float] = time.perf_counter,
) -> SweepRunResult:
    """Run (or resume) every point of ``spec``, caching through ``store``.

    ``store=None`` uses a throwaway in-memory store (no resumability, same
    code path).  ``clock`` is injectable so tests can pin wall-clock timing
    and assert byte-identical store files.

    >>> from repro.sweeps import SweepSpec
    >>> spec = SweepSpec("doc", (3,), (0.02,), ("union-find",), shots=16)
    >>> run = run_sweep(spec)
    >>> run.completed, run.cached
    (1, 0)
    >>> 0.0 <= run.results[0].rate <= 1.0
    True
    """
    if store is None:
        store = ResultStore(None)
    validate_spec_axes(spec)
    spec_hash = store.ensure_spec(spec)
    run = SweepRunResult(spec=spec, spec_hash=spec_hash)
    for point in spec.expand():
        cached = store.get(spec_hash, point)
        if cached is not None:
            run.results.append(cached)
            if progress is not None:
                progress(point, cached)
            continue
        result = run_point(point, workers=workers, clock=clock)
        store.put(spec_hash, result)
        run.results.append(result)
        if progress is not None:
            progress(point, result)
    return run
