"""Threshold / scaling fits over stored sweep results.

Thin adapters from :class:`~repro.sweeps.store.PointResult` lists onto the
fitting machinery of :mod:`repro.evaluation.scaling`.  Zero-failure points
are **never** fed into a fit: their maximum-likelihood rate is the degenerate
``0 ± 0`` (see :func:`repro.sweeps.store.rule_of_three_upper_bound`), which
in log-space would pull the fit to ``-inf``.  Reports surface them as
one-sided upper bounds instead.
"""

from __future__ import annotations

from ..evaluation.scaling import LogicalErrorScaling, fit_logical_error_scaling
from .store import PointResult


def scaling_points(
    results: list[PointResult],
    *,
    noise: str | None = None,
    decoder: str | None = None,
) -> list[tuple[int, float, float]]:
    """``(distance, physical_error_rate, rate)`` tuples usable by a fit.

    Zero-failure (degenerate) points are excluded; optional ``noise`` /
    ``decoder`` filters restrict to one grid slice.  Streaming points are
    excluded too: they decode the same seeded syndromes as their batch
    counterparts (streaming is exactness-preserving), so keeping both would
    double-count every cell.
    """
    out: list[tuple[int, float, float]] = []
    for result in results:
        point = result.point
        if noise is not None and point.noise != noise:
            continue
        if decoder is not None and point.decoder != decoder:
            continue
        if result.zero_failures or point.streaming:
            continue
        out.append((point.distance, point.physical_error_rate, result.rate))
    return out


def fit_sweep_scaling(
    results: list[PointResult],
    *,
    noise: str | None = None,
    decoder: str | None = None,
) -> LogicalErrorScaling:
    """Fit ``p_L = A (p / p_th)^((d+1)/2)`` to one slice of sweep results.

    Raises ``ValueError`` when fewer than two non-degenerate points remain.
    """
    return fit_logical_error_scaling(
        scaling_points(results, noise=noise, decoder=decoder)
    )


def report_rows(results: list[PointResult]) -> list[dict]:
    """Rows for ``format_rows`` — one per point, upper bounds where needed.

    Zero-failure points report ``logical_error_rate`` as the one-sided
    ``<= rule-of-three`` bound rather than the degenerate ``0 ± 0``.
    """
    rows: list[dict] = []
    for result in results:
        point = result.point
        if result.zero_failures:
            rate_display = f"<={result.upper_bound:.3g}"
        else:
            rate_display = f"{result.rate:.4g}"
        row = {
            "distance": point.distance,
            "noise": point.noise,
            "physical_error_rate": point.physical_error_rate,
            "decoder": point.decoder,
            "mode": "stream" if point.streaming else "batch",
            "shots": result.shots,
            "errors": result.errors,
            "logical_error_rate": rate_display,
            "standard_error": result.standard_error,
            "upper_bound": result.upper_bound,
            "shots_per_sec": result.shots_per_second,
            "cached": "yes" if result.cached else "no",
        }
        if result.latency is not None and result.latency.count:
            row["latency_p99_us"] = result.latency.p99_seconds * 1e6
        rows.append(row)
    return rows
