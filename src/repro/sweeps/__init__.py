"""Declarative, resumable sweep orchestration over the Monte-Carlo engine.

See ``docs/sweeps.md`` for the full tour: :class:`SweepSpec` expands into
seed-stable :class:`SweepPoint`\\ s, :func:`run_sweep` executes them on the
sharded :class:`~repro.evaluation.engine.MonteCarloEngine` with cache hits
served from a JSON-lines :class:`ResultStore`, and
:func:`bench_document` / :func:`validate_bench` produce the
``BENCH_sweep.json`` performance trajectory consumed by CI.
"""

from .bench import (
    BENCH_SCHEMA_VERSION,
    BenchSchemaError,
    bench_document,
    current_commit,
    validate_bench,
    write_bench,
)
from .fits import fit_sweep_scaling, report_rows, scaling_points
from .runner import (
    SweepRunResult,
    build_point_graph,
    run_point,
    run_sweep,
    validate_spec_axes,
)
from .spec import SMOKE_SPEC, SweepPoint, SweepSpec, derive_point_seed, make_spec
from .store import (
    LatencySummary,
    LUTStats,
    PointResult,
    ResultStore,
    StoreError,
    rule_of_three_upper_bound,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchSchemaError",
    "bench_document",
    "current_commit",
    "validate_bench",
    "write_bench",
    "fit_sweep_scaling",
    "report_rows",
    "scaling_points",
    "SweepRunResult",
    "build_point_graph",
    "run_point",
    "run_sweep",
    "validate_spec_axes",
    "SMOKE_SPEC",
    "SweepPoint",
    "SweepSpec",
    "derive_point_seed",
    "make_spec",
    "LatencySummary",
    "LUTStats",
    "PointResult",
    "ResultStore",
    "StoreError",
    "rule_of_three_upper_bound",
]
