"""On-disk result store that makes sweeps resumable.

The store is a JSON-lines file with two record types:

* ``spec`` records — the full :class:`~repro.sweeps.spec.SweepSpec` under its
  content hash, written once per sweep so ``repro sweep resume`` and
  ``repro sweep report`` need nothing but the store file;
* ``point`` records — one completed :class:`PointResult`, keyed by
  ``(spec_hash, point.key)``.  The key encodes every result-determining
  parameter (distance, noise, error rate, decoder, shots, seed, shard size,
  early-stopping target), so a lookup hit is guaranteed to be the exact run
  that would otherwise be recomputed.

Records separate the **deterministic result** (shots, errors, latency
histogram summary — a pure function of the point parameters) from
**timing metadata** (elapsed wall-clock, shots/sec — different on every
machine).  :meth:`ResultStore.fingerprint` hashes only the deterministic
part, which is the store's bit-identity contract: an interrupted-and-resumed
sweep produces the same fingerprint as an uninterrupted one, for any worker
count.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from ..evaluation.engine import (
    LatencyHistogram,
    binomial_standard_error,
    rule_of_three_upper_bound,
)
from .spec import SweepPoint, SweepSpec

#: Version of the on-disk record layout.
STORE_FORMAT = 1


@dataclass(frozen=True)
class LatencySummary:
    """Deterministic summary of a point's latency histogram."""

    count: int
    mean_seconds: float
    p50_seconds: float
    p99_seconds: float
    min_seconds: float
    max_seconds: float

    @classmethod
    def from_histogram(cls, histogram: LatencyHistogram) -> "LatencySummary":
        if histogram.count == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            count=histogram.count,
            mean_seconds=histogram.mean,
            p50_seconds=histogram.percentile(50),
            p99_seconds=histogram.percentile(99),
            min_seconds=histogram.min_seconds,
            max_seconds=histogram.max_seconds,
        )

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "mean_seconds": self.mean_seconds,
            "p50_seconds": self.p50_seconds,
            "p99_seconds": self.p99_seconds,
            "min_seconds": self.min_seconds,
            "max_seconds": self.max_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LatencySummary":
        return cls(
            count=int(data["count"]),
            mean_seconds=float(data["mean_seconds"]),
            p50_seconds=float(data["p50_seconds"]),
            p99_seconds=float(data["p99_seconds"]),
            min_seconds=float(data["min_seconds"]),
            max_seconds=float(data["max_seconds"]),
        )


@dataclass(frozen=True)
class LUTStats:
    """Deterministic LUT hit/miss statistics of one ``lut+<fallback>`` point.

    ``hits``/``misses`` count decoded (defect-carrying) shots resolved by /
    falling through the lookup table; ``zero_defect_hits`` counts the shots
    the Monte-Carlo engine never decoded at all — the LUT's dedicated
    zero-defect fast path answers those in O(1) by construction, so they are
    table hits for rate purposes.
    """

    hits: int
    misses: int
    zero_defect_hits: int

    @property
    def hit_rate(self) -> float:
        """Table hits (incl. zero-defect shots) over all shots."""
        total = self.hits + self.misses + self.zero_defect_hits
        if not total:
            return 0.0
        return (self.hits + self.zero_defect_hits) / total

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "zero_defect_hits": self.zero_defect_hits,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LUTStats":
        return cls(
            hits=int(data["hits"]),
            misses=int(data["misses"]),
            zero_defect_hits=int(data["zero_defect_hits"]),
        )


@dataclass(frozen=True)
class PointResult:
    """Completed Monte-Carlo result of one sweep point."""

    point: SweepPoint
    shots: int
    errors: int
    decoded_shots: int
    defects: int
    stopped_early: bool
    latency: LatencySummary | None = None
    #: LUT hit/miss statistics — only ``lut+<fallback>`` points carry one.
    #: Serialized *only when present* so stores written before the LUT
    #: subsystem existed keep their fingerprints byte for byte.
    lut: LUTStats | None = None
    #: Heralded erasure flags observed across all shots — non-zero only for
    #: the ``erasure`` noise family.  Serialized *only when non-zero* (same
    #: contract as ``lut``) so pre-erasure stores keep their fingerprints.
    erased: int = 0
    #: Wall-clock seconds of the run (machine-dependent; excluded from the
    #: store's determinism contract).  Cache hits restore the value the
    #: original run recorded, so throughput columns reflect that machine.
    elapsed_seconds: float = 0.0
    #: True when this result came out of the store instead of being re-run.
    cached: bool = False

    @property
    def rate(self) -> float:
        return self.errors / self.shots if self.shots else 0.0

    @property
    def standard_error(self) -> float:
        return binomial_standard_error(self.errors, self.shots)

    @property
    def upper_bound(self) -> float:
        """One-sided 95% upper bound on the logical error rate (rule of three)."""
        return rule_of_three_upper_bound(self.errors, self.shots)

    @property
    def zero_failures(self) -> bool:
        return self.errors == 0

    @property
    def mean_defects(self) -> float:
        return self.defects / self.shots if self.shots else 0.0

    @property
    def shots_per_second(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.shots / self.elapsed_seconds

    def result_dict(self) -> dict:
        """The deterministic payload stored on disk."""
        payload = {
            "shots": self.shots,
            "errors": self.errors,
            "decoded_shots": self.decoded_shots,
            "defects": self.defects,
            "stopped_early": self.stopped_early,
            "latency": self.latency.to_dict() if self.latency else None,
        }
        if self.lut is not None:
            payload["lut"] = self.lut.to_dict()
        if self.erased:
            payload["erased"] = self.erased
        return payload


class StoreError(RuntimeError):
    """Raised on malformed store files or incompatible formats."""


class ResultStore:
    """Append-only JSON-lines store of sweep specs and point results.

    ``path=None`` keeps the store in memory (used by the experiment runners
    when no persistence was requested); every record still round-trips
    through its JSON line, so the in-memory and on-disk behaviours are
    identical.

    >>> from repro.sweeps import SweepSpec
    >>> store = ResultStore(None)                      # in-memory
    >>> spec = SweepSpec("s", (3,), (0.02,), ("union-find",), shots=8)
    >>> spec_hash = store.ensure_spec(spec)
    >>> len(store), spec_hash == spec.spec_hash()
    (0, True)
    >>> len(store.fingerprint())
    64
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._lines: list[str] = []
        self._specs: dict[str, dict] = {}
        self._points: dict[tuple[str, str], dict] = {}
        self._trailing_newline_missing = False
        if self.path is not None and self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    # loading / indexing
    # ------------------------------------------------------------------
    def _index(self, line: str) -> None:
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise StoreError(f"malformed store line: {line[:80]!r}") from exc
        if record.get("format") != STORE_FORMAT:
            raise StoreError(
                f"unsupported store format {record.get('format')!r} "
                f"(this build reads format {STORE_FORMAT})"
            )
        kind = record.get("type")
        if kind == "spec":
            self._specs[record["spec_hash"]] = record["spec"]
        elif kind == "point":
            self._points[(record["spec_hash"], record["key"])] = record
        else:
            raise StoreError(f"unknown store record type {kind!r}")

    def _load(self) -> None:
        raw = self.path.read_text(encoding="utf-8")
        *complete, tail = raw.split("\n")  # tail == "" when newline-terminated
        for line in complete:
            line = line.strip()
            if not line:
                continue
            self._lines.append(line)
            self._index(line)  # a malformed *terminated* line is corruption
        if not tail.strip():
            return
        # The final line lost its newline — a write torn by SIGKILL / power
        # loss / full disk.  If the JSON still parses the record is complete
        # (only the terminator is missing): keep it and restore the newline
        # on the next append.  Otherwise drop the partial record by
        # truncating the file, so the sweep loses at most the point in
        # flight and the store stays appendable — the documented
        # crash-resume contract.
        try:
            json.loads(tail)
        except json.JSONDecodeError:
            keep_bytes = len(raw.encode("utf-8")) - len(tail.encode("utf-8"))
            with open(self.path, "r+b") as handle:
                handle.truncate(keep_bytes)
            return
        self._lines.append(tail)
        self._index(tail)
        self._trailing_newline_missing = True

    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._lines.append(line)
        self._index(line)
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                if self._trailing_newline_missing:
                    handle.write("\n")
                    self._trailing_newline_missing = False
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def ensure_spec(self, spec: SweepSpec) -> str:
        """Record the spec (once) and return its content hash."""
        spec_hash = spec.spec_hash()
        if spec_hash not in self._specs:
            self._append(
                {
                    "type": "spec",
                    "format": STORE_FORMAT,
                    "spec_hash": spec_hash,
                    "spec": spec.to_dict(),
                }
            )
        return spec_hash

    def put(self, spec_hash: str, result: PointResult) -> None:
        """Append one completed point (idempotent per ``(spec_hash, key)``)."""
        key = result.point.key
        if (spec_hash, key) in self._points:
            return
        self._append(
            {
                "type": "point",
                "format": STORE_FORMAT,
                "spec_hash": spec_hash,
                "key": key,
                "point": result.point.to_dict(),
                "result": result.result_dict(),
                "timing": {
                    "elapsed_seconds": result.elapsed_seconds,
                    "shots_per_second": result.shots_per_second,
                },
            }
        )

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @staticmethod
    def _result_from_record(record: dict, cached: bool) -> PointResult:
        result = record["result"]
        latency = result.get("latency")
        lut = result.get("lut")
        timing = record.get("timing") or {}
        return PointResult(
            point=SweepPoint.from_dict(record["point"]),
            shots=int(result["shots"]),
            errors=int(result["errors"]),
            decoded_shots=int(result["decoded_shots"]),
            defects=int(result["defects"]),
            stopped_early=bool(result["stopped_early"]),
            latency=LatencySummary.from_dict(latency) if latency else None,
            lut=LUTStats.from_dict(lut) if lut else None,
            erased=int(result.get("erased", 0)),
            elapsed_seconds=float(timing.get("elapsed_seconds", 0.0)),
            cached=cached,
        )

    def get(self, spec_hash: str, point: SweepPoint) -> PointResult | None:
        """The cached result of ``point``, or ``None`` when absent."""
        record = self._points.get((spec_hash, point.key))
        if record is None:
            return None
        return self._result_from_record(record, cached=True)

    def __contains__(self, key: tuple[str, SweepPoint]) -> bool:
        spec_hash, point = key
        return (spec_hash, point.key) in self._points

    def __len__(self) -> int:
        return len(self._points)

    @property
    def specs(self) -> dict[str, SweepSpec]:
        """All specs recorded in the store, by content hash (insertion order)."""
        return {h: SweepSpec.from_dict(d) for h, d in self._specs.items()}

    def results(self, spec_hash: str | None = None) -> list[PointResult]:
        """All stored point results (optionally one sweep's), in write order."""
        out: list[PointResult] = []
        for (stored_hash, _key), record in self._points.items():
            if spec_hash is not None and stored_hash != spec_hash:
                continue
            out.append(self._result_from_record(record, cached=True))
        return out

    # ------------------------------------------------------------------
    # determinism contract
    # ------------------------------------------------------------------
    def canonical_lines(self) -> list[str]:
        """The store's records with machine-dependent timing stripped."""
        canonical: list[str] = []
        for line in self._lines:
            record = json.loads(line)
            record.pop("timing", None)
            canonical.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
        return canonical

    def fingerprint(self) -> str:
        """SHA-256 over the canonical records — equal fingerprints mean the
        stores hold bit-identical sweep results (independent of wall-clock
        timing, interruption points, and worker counts)."""
        digest = hashlib.sha256()
        for line in self.canonical_lines():
            digest.update(line.encode())
            digest.update(b"\n")
        return digest.hexdigest()
